#include "spec/spec.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace bigfish::spec {

namespace {

std::string
quoteString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parses @p raw as one value of @p def's type; @p source labels errors. */
Result<Value>
parseValue(const ParamDef &def, const std::string &raw,
           const std::string &source)
{
    const std::string text = trim(raw);
    switch (def.type) {
      case ValueType::Int: {
        if (text.empty())
            return parseError(source + ": empty value (expected integer)");
        errno = 0;
        char *end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE || end == text.c_str() || *end != '\0')
            return parseError(source + ": invalid integer \"" + text +
                              "\"");
        if (v < def.minValue || v > def.maxValue)
            return outOfRangeError(
                source + ": value " + std::to_string(v) +
                " out of range [" + std::to_string(def.minValue) + ", " +
                std::to_string(def.maxValue) + "]");
        return Value::ofInt(v);
      }
      case ValueType::Double: {
        if (text.empty())
            return parseError(source + ": empty value (expected number)");
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (errno == ERANGE || end == text.c_str() || *end != '\0')
            return parseError(source + ": invalid number \"" + text +
                              "\"");
        return Value::ofDouble(v);
      }
      case ValueType::Bool: {
        if (text == "true" || text == "1")
            return Value::ofBool(true);
        if (text == "false" || text == "0")
            return Value::ofBool(false);
        return parseError(source + ": invalid boolean \"" + text +
                          "\" (expected true/false)");
      }
      case ValueType::String:
        return Value::ofString(raw);
    }
    panic("unhandled ValueType in parseValue");
}

} // namespace

const char *
valueTypeName(ValueType type)
{
    switch (type) {
      case ValueType::Int:
        return "int";
      case ValueType::Double:
        return "double";
      case ValueType::Bool:
        return "bool";
      case ValueType::String:
        return "string";
    }
    return "unknown";
}

Value
Value::ofInt(long long v)
{
    Value value;
    value.type_ = ValueType::Int;
    value.int_ = v;
    return value;
}

Value
Value::ofDouble(double v)
{
    Value value;
    value.type_ = ValueType::Double;
    value.double_ = v;
    return value;
}

Value
Value::ofBool(bool v)
{
    Value value;
    value.type_ = ValueType::Bool;
    value.bool_ = v;
    return value;
}

Value
Value::ofString(std::string v)
{
    Value value;
    value.type_ = ValueType::String;
    value.string_ = std::move(v);
    return value;
}

long long
Value::asInt() const
{
    panicIf(type_ != ValueType::Int, "Value::asInt on a non-int value");
    return int_;
}

double
Value::asDouble() const
{
    panicIf(type_ != ValueType::Double,
            "Value::asDouble on a non-double value");
    return double_;
}

bool
Value::asBool() const
{
    panicIf(type_ != ValueType::Bool, "Value::asBool on a non-bool value");
    return bool_;
}

const std::string &
Value::asString() const
{
    panicIf(type_ != ValueType::String,
            "Value::asString on a non-string value");
    return string_;
}

std::string
Value::render() const
{
    switch (type_) {
      case ValueType::Int:
        return std::to_string(int_);
      case ValueType::Double: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        return buf;
      }
      case ValueType::Bool:
        return bool_ ? "true" : "false";
      case ValueType::String:
        return quoteString(string_);
    }
    return "";
}

bool
operator==(const Value &a, const Value &b)
{
    if (a.type_ != b.type_)
        return false;
    switch (a.type_) {
      case ValueType::Int:
        return a.int_ == b.int_;
      case ValueType::Double:
        return a.double_ == b.double_;
      case ValueType::Bool:
        return a.bool_ == b.bool_;
      case ValueType::String:
        return a.string_ == b.string_;
    }
    return false;
}

ParamSchema &
ParamSchema::add(ParamDef def)
{
    panicIf(def.name.empty(), "parameter declared with an empty name");
    panicIf(find(def.name) != nullptr,
            "parameter '" + def.name + "' declared twice");
    params_.push_back(std::move(def));
    return *this;
}

ParamSchema &
ParamSchema::addInt(std::string name, std::string env,
                    long long default_value, long long min_value,
                    long long max_value, std::string help)
{
    panicIf(default_value < min_value || default_value > max_value,
            "default of parameter '" + name + "' outside its range");
    ParamDef def;
    def.name = std::move(name);
    def.env = std::move(env);
    def.type = ValueType::Int;
    def.defaultValue = Value::ofInt(default_value);
    def.minValue = min_value;
    def.maxValue = max_value;
    def.help = std::move(help);
    return add(std::move(def));
}

ParamSchema &
ParamSchema::addDouble(std::string name, std::string env,
                       double default_value, std::string help)
{
    ParamDef def;
    def.name = std::move(name);
    def.env = std::move(env);
    def.type = ValueType::Double;
    def.defaultValue = Value::ofDouble(default_value);
    def.help = std::move(help);
    return add(std::move(def));
}

ParamSchema &
ParamSchema::addBool(std::string name, std::string env, bool default_value,
                     std::string help)
{
    ParamDef def;
    def.name = std::move(name);
    def.env = std::move(env);
    def.type = ValueType::Bool;
    def.defaultValue = Value::ofBool(default_value);
    def.help = std::move(help);
    return add(std::move(def));
}

ParamSchema &
ParamSchema::addString(std::string name, std::string env,
                       std::string default_value, std::string help)
{
    ParamDef def;
    def.name = std::move(name);
    def.env = std::move(env);
    def.type = ValueType::String;
    def.defaultValue = Value::ofString(std::move(default_value));
    def.help = std::move(help);
    return add(std::move(def));
}

const ParamDef *
ParamSchema::find(const std::string &name) const
{
    for (const ParamDef &def : params_)
        if (def.name == name)
            return &def;
    return nullptr;
}

RunSpec::RunSpec(std::string experiment, std::map<std::string, Value> values)
    : experiment_(std::move(experiment)), values_(std::move(values))
{
}

bool
RunSpec::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

const Value &
RunSpec::get(const std::string &name) const
{
    const auto it = values_.find(name);
    panicIf(it == values_.end(),
            "RunSpec has no parameter '" + name + "'");
    return it->second;
}

long long
RunSpec::getInt(const std::string &name) const
{
    return get(name).asInt();
}

double
RunSpec::getDouble(const std::string &name) const
{
    return get(name).asDouble();
}

bool
RunSpec::getBool(const std::string &name) const
{
    return get(name).asBool();
}

const std::string &
RunSpec::getString(const std::string &name) const
{
    return get(name).asString();
}

std::string
RunSpec::paramsJson(const std::string &indent) const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : values_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += indent + "  " + quoteString(name) + ": " + value.render();
    }
    if (!first)
        out += "\n" + indent;
    out += "}";
    return out;
}

std::string
RunSpec::toJson() const
{
    std::string out = "{\n";
    out += "  \"experiment\": " + quoteString(experiment_) + ",\n";
    out += "  \"spec\": " + paramsJson("  ") + "\n";
    out += "}\n";
    return out;
}

std::string
RunSpec::toToml() const
{
    std::string out = "experiment = " + quoteString(experiment_) + "\n";
    for (const auto &[name, value] : values_)
        out += name + " = " + value.render() + "\n";
    return out;
}

bool
operator==(const RunSpec &a, const RunSpec &b)
{
    return a.experiment_ == b.experiment_ && a.values_ == b.values_;
}

Result<RunSpec>
resolveSpec(const std::string &experiment, const ParamSchema &schema,
            const SpecSources &sources)
{
    std::map<std::string, Value> values;
    for (const ParamDef &def : schema.params())
        values[def.name] = def.defaultValue;

    // Layer 2: environment variables (strict: garbage is an error that
    // names the variable, never silently ignored or partially parsed).
    if (sources.env) {
        for (const ParamDef &def : schema.params()) {
            if (def.env.empty())
                continue;
            const auto raw = sources.env(def.env);
            if (!raw.has_value())
                continue;
            auto value = parseValue(def, *raw,
                                    "environment variable " + def.env);
            if (!value.isOk())
                return value.status();
            values[def.name] = std::move(value).value();
        }
    }

    // Layer 3: presets (--smoke / --full scale macros).
    for (const auto &[name, raw] : sources.presets) {
        const ParamDef *def = schema.find(name);
        if (def == nullptr)
            continue; // Presets are scale hints; not every experiment
                      // declares every scale parameter.
        auto value = parseValue(*def, raw, "preset " + name);
        if (!value.isOk())
            return value.status();
        values[def->name] = std::move(value).value();
    }

    // Layer 4: the spec file (strict: unknown keys are rejected).
    if (!sources.specText.empty()) {
        auto file = parseSpecText(sources.specText, sources.specName);
        if (!file.isOk())
            return file.status();
        const SpecFile &spec_file = file.value();
        if (!spec_file.experiment.empty() &&
            spec_file.experiment != experiment) {
            return invalidArgumentError(
                sources.specName + ": spec is for experiment \"" +
                spec_file.experiment + "\", not \"" + experiment + "\"");
        }
        for (const auto &[name, raw] : spec_file.entries) {
            const ParamDef *def = schema.find(name);
            if (def == nullptr)
                return invalidArgumentError(
                    sources.specName + ": unknown key \"" + name +
                    "\" (not a parameter of experiment " + experiment +
                    ")");
            auto value = parseValue(*def, raw,
                                    sources.specName + " key " + name);
            if (!value.isOk())
                return value.status();
            values[def->name] = std::move(value).value();
        }
    }

    // Layer 5: command-line flags (strongest; unknown flags rejected).
    for (const auto &[name, raw] : sources.flags) {
        const ParamDef *def = schema.find(name);
        if (def == nullptr)
            return invalidArgumentError(
                "unknown flag --" + name + " for experiment " +
                experiment + " (see `bigfish describe " + experiment +
                "`)");
        auto value = parseValue(*def, raw, "flag --" + name);
        if (!value.isOk())
            return value.status();
        values[def->name] = std::move(value).value();
    }

    return RunSpec(experiment, std::move(values));
}

std::string
helpText(const ParamSchema &schema)
{
    std::string out;
    for (const ParamDef &def : schema.params()) {
        std::string left = "  --" + def.name + "=<" +
                           valueTypeName(def.type) + ">";
        if (left.size() < 26)
            left.resize(26, ' ');
        out += left + def.help;
        out += " (default " + def.defaultValue.render();
        if (!def.env.empty())
            out += ", env " + def.env;
        out += ")\n";
    }
    return out;
}

} // namespace bigfish::spec
