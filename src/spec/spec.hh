/**
 * @file
 * The run-spec layer: declarative experiment parameters.
 *
 * Every experiment declares its parameters once as a ParamSchema (name,
 * type, default, legal range, env variable, help text). A RunSpec is a
 * *fully-resolved* assignment of a value to every declared parameter,
 * produced by layering sources in a fixed order:
 *
 *   defaults -> environment -> presets (--smoke / --full) ->
 *   spec file (TOML or JSON) -> command-line flags
 *
 * Resolution is strict: a malformed value fails with a Status naming
 * the offending source (e.g. `environment variable BF_SITES: invalid
 * integer "abc"`), and a spec-file key that is not a declared parameter
 * is rejected rather than ignored. The resolved spec serializes to
 * JSON/TOML and parses back losslessly, so any run can be replayed
 * bit-for-bit from the spec embedded in its emitted report.
 *
 * This module never touches the process environment itself (bigfish-lint
 * bans getenv outside sanctioned files): callers inject an EnvLookup.
 */

#ifndef BF_SPEC_SPEC_HH
#define BF_SPEC_SPEC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/result.hh"
#include "base/status.hh"

namespace bigfish::spec {

/**
 * Version of the emitted run-artifact JSON schema. History:
 *  v1 — (implicit; no "schemaVersion" key) ad-hoc per-phase
 *       collect/featurize/train/eval second fields on "phases".
 *  v2 — adds "schemaVersion" and the per-stage "stages" table (the
 *       phase rollup is reduced from it); drops the overlapping-wall
 *       trainSeconds/evalSeconds legacy fields.
 *  v3 — stage lines gain simulator perf counters (simEvents,
 *       simInterrupts, simAllocations, simBytesSorted,
 *       simEventsPerSec; see sim/perf.hh), carried on the *Seconds
 *       line so cold/warm artifact diffs stay clean.
 * Spec replay (`--spec=<artifact.json>`) accepts any version up to
 * this one — parameters live under "spec" in every version — and
 * rejects newer artifacts with a clear version-mismatch error.
 */
inline constexpr long long kArtifactSchemaVersion = 3;

/** The type of one declared parameter. */
enum class ValueType
{
    Int,
    Double,
    Bool,
    String,
};

/** Stable name of a value type ("int", "double", "bool", "string"). */
const char *valueTypeName(ValueType type);

/** One typed parameter value. */
class Value
{
  public:
    Value() = default;

    static Value ofInt(long long v);
    static Value ofDouble(double v);
    static Value ofBool(bool v);
    static Value ofString(std::string v);

    ValueType type() const { return type_; }

    /** Typed accessors; panic on a type mismatch (schema bug). */
    long long asInt() const;
    double asDouble() const;
    bool asBool() const;
    const std::string &asString() const;

    /**
     * The value as a TOML/JSON literal: `42`, `0.5`, `true`,
     * `"quoted"`. Doubles render with enough digits to round-trip.
     */
    std::string render() const;

    friend bool operator==(const Value &a, const Value &b);
    friend bool operator!=(const Value &a, const Value &b)
    {
        return !(a == b);
    }

  private:
    ValueType type_ = ValueType::Int;
    long long int_ = 0;
    double double_ = 0.0;
    bool bool_ = false;
    std::string string_;
};

/** Declaration of one parameter. */
struct ParamDef
{
    std::string name; ///< Key in spec files; the flag is "--<name>".
    std::string env;  ///< Environment variable ("" = no env override).
    ValueType type = ValueType::Int;
    Value defaultValue;
    /** Inclusive legal range (Int parameters only). */
    long long minValue = 0;
    long long maxValue = 0;
    std::string help;
};

/** The declared parameters of one experiment, in declaration order. */
class ParamSchema
{
  public:
    ParamSchema &addInt(std::string name, std::string env,
                        long long default_value, long long min_value,
                        long long max_value, std::string help);
    ParamSchema &addDouble(std::string name, std::string env,
                           double default_value, std::string help);
    ParamSchema &addBool(std::string name, std::string env,
                         bool default_value, std::string help);
    ParamSchema &addString(std::string name, std::string env,
                           std::string default_value, std::string help);

    /** The definition of @p name, or nullptr when undeclared. */
    const ParamDef *find(const std::string &name) const;

    const std::vector<ParamDef> &params() const { return params_; }

  private:
    ParamSchema &add(ParamDef def);

    std::vector<ParamDef> params_;
};

/**
 * A fully-resolved run specification: the experiment name plus one
 * value per declared parameter. Parameters iterate in sorted key order,
 * so serialization is deterministic.
 */
class RunSpec
{
  public:
    RunSpec() = default;
    RunSpec(std::string experiment, std::map<std::string, Value> values);

    const std::string &experiment() const { return experiment_; }
    const std::map<std::string, Value> &params() const { return values_; }

    bool has(const std::string &name) const;

    /** The value of @p name; panics when absent (resolution bug). */
    const Value &get(const std::string &name) const;

    long long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;
    const std::string &getString(const std::string &name) const;

    /**
     * The parameter block alone as a JSON object (sorted keys), for
     * embedding in a larger report: `{"folds": 5, "sites": 20, ...}`.
     * @p indent prefixes each key line; pass "" for a compact block.
     */
    std::string paramsJson(const std::string &indent) const;

    /** `{"experiment": "...", "spec": {...}}` — the replayable form. */
    std::string toJson() const;

    /** TOML form: `experiment = "..."` plus one `key = value` line. */
    std::string toToml() const;

    friend bool operator==(const RunSpec &a, const RunSpec &b);
    friend bool operator!=(const RunSpec &a, const RunSpec &b)
    {
        return !(a == b);
    }

  private:
    std::string experiment_;
    std::map<std::string, Value> values_;
};

/** Looks a variable up in the (injected) environment. */
using EnvLookup =
    std::function<std::optional<std::string>(const std::string &)>;

/**
 * An unresolved spec file: optional experiment name plus raw key/value
 * entries (values unquoted but not yet coerced against a schema).
 */
struct SpecFile
{
    std::string experiment; ///< "" when the file names no experiment.
    std::vector<std::pair<std::string, std::string>> entries;
};

/**
 * Parses TOML (flat `key = value` lines) or JSON spec text; the format
 * is auto-detected (JSON starts with '{'). JSON accepts either a flat
 * parameter object or a full emitted run artifact — when a "spec"
 * sub-object is present, parameters come from it (and "experiment" from
 * the top level), so `bigfish run --spec=<artifact.json>` replays a
 * recorded run directly. @p source_name labels errors ("run.toml").
 */
[[nodiscard]] Result<SpecFile> parseSpecText(const std::string &text,
                                             const std::string &source_name);

/** The layered value sources resolveSpec() applies, weakest first. */
struct SpecSources
{
    /** Environment lookup; null disables env overrides. */
    EnvLookup env;
    /** Preset (--smoke/--full) overrides, as (name, raw value). */
    std::vector<std::pair<std::string, std::string>> presets;
    /** Spec-file text ("" = none) and its name for error messages. */
    std::string specText;
    std::string specName;
    /** Command-line flag overrides, as (name, raw value). */
    std::vector<std::pair<std::string, std::string>> flags;
};

/**
 * Resolves @p schema against the layered @p sources into a full
 * RunSpec for @p experiment. Fails (with the offending source named)
 * on malformed or out-of-range values, on spec-file keys that are not
 * declared parameters, on unknown flags, and on a spec file whose
 * `experiment` disagrees with @p experiment.
 */
[[nodiscard]] Result<RunSpec> resolveSpec(const std::string &experiment,
                                          const ParamSchema &schema,
                                          const SpecSources &sources);

/** One flag-help line per parameter, for a CLI `--help` screen. */
std::string helpText(const ParamSchema &schema);

} // namespace bigfish::spec

#endif // BF_SPEC_SPEC_HH
