/**
 * @file
 * Spec-file parsing: a flat TOML subset and a small JSON reader.
 *
 * Both formats produce the same SpecFile (raw key/value entries plus an
 * optional experiment name); type coercion against the schema happens in
 * resolveSpec(), which is also where unknown keys are rejected.
 */

#include "spec/spec.hh"

#include <cctype>
#include <cstdlib>

namespace bigfish::spec {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strips a trailing # comment that is not inside a string literal. */
std::string
stripComment(const std::string &line)
{
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"')
            in_string = !in_string;
        else if (line[i] == '#' && !in_string)
            return line.substr(0, i);
    }
    return line;
}

/** Unquotes a `"..."` literal (minimal \" and \\ escapes). */
Result<std::string>
unquote(const std::string &text, const std::string &where)
{
    if (text.size() < 2 || text.front() != '"' || text.back() != '"')
        return parseError(where + ": unterminated string " + text);
    std::string out;
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
        if (text[i] == '\\' && i + 2 < text.size()) {
            ++i;
            if (text[i] != '"' && text[i] != '\\')
                return parseError(where + ": unsupported escape \"\\" +
                                  std::string(1, text[i]) + "\"");
        }
        out.push_back(text[i]);
    }
    return out;
}

Result<SpecFile>
parseToml(const std::string &text, const std::string &source_name)
{
    SpecFile file;
    std::size_t start = 0;
    int lineno = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string raw = text.substr(start, end - start);
        start = end + 1;
        ++lineno;

        const std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;
        const std::string where =
            source_name + " line " + std::to_string(lineno);

        if (line.front() == '[')
            return parseError(where + ": sections are not supported in "
                                      "run specs (flat key = value only)");
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return parseError(where + ": expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            return parseError(where + ": empty key");
        if (!value.empty() && value.front() == '"') {
            auto unquoted = unquote(value, where);
            if (!unquoted.isOk())
                return unquoted.status();
            value = std::move(unquoted).value();
        }
        if (key == "experiment")
            file.experiment = value;
        else
            file.entries.emplace_back(key, value);
    }
    return file;
}

// --- Minimal JSON reader ------------------------------------------------

struct JsonReader
{
    const std::string &text;
    const std::string &sourceName;
    std::size_t pos = 0;

    std::string
    where() const
    {
        return sourceName + " offset " + std::to_string(pos);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    [[nodiscard]] Result<std::string>
    parseString()
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return parseError(where() + ": expected string");
        std::string out;
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size()) {
                ++pos;
                if (text[pos] != '"' && text[pos] != '\\')
                    return parseError(where() + ": unsupported escape");
            }
            out.push_back(text[pos]);
            ++pos;
        }
        if (pos >= text.size())
            return parseError(where() + ": unterminated string");
        ++pos;
        return out;
    }

    /**
     * Parses one scalar JSON value into its raw-text form ("" second
     * means "not a scalar": the caller must handle nesting itself).
     */
    [[nodiscard]] Result<std::string>
    parseScalar()
    {
        skipWs();
        if (pos >= text.size())
            return parseError(where() + ": unexpected end of input");
        const char c = text[pos];
        if (c == '"')
            return parseString();
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+') {
            std::string out;
            while (pos < text.size() &&
                   (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '-' || text[pos] == '+' ||
                    text[pos] == '.' || text[pos] == 'e' ||
                    text[pos] == 'E')) {
                out.push_back(text[pos]);
                ++pos;
            }
            return out;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return std::string("true");
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return std::string("false");
        }
        return parseError(where() + ": unsupported JSON value");
    }

    /** Skips any JSON value (scalar, object, array, null). */
    [[nodiscard]] Status
    skipValue()
    {
        skipWs();
        if (pos >= text.size())
            return parseError(where() + ": unexpected end of input");
        const char c = text[pos];
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++pos;
            skipWs();
            if (eat(close))
                return Status::ok();
            while (true) {
                if (c == '{') {
                    BF_RETURN_IF_ERROR(parseString().status());
                    if (!eat(':'))
                        return parseError(where() + ": expected ':'");
                }
                BF_RETURN_IF_ERROR(skipValue());
                if (eat(close))
                    return Status::ok();
                if (!eat(','))
                    return parseError(where() + ": expected ',' or '" +
                                      std::string(1, close) + "'");
            }
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return Status::ok();
        }
        return parseScalar().status();
    }

    /** Parses `{"key": scalar, ...}` into raw entries. */
    [[nodiscard]] Result<std::vector<std::pair<std::string, std::string>>>
    parseFlatObject()
    {
        std::vector<std::pair<std::string, std::string>> entries;
        if (!eat('{'))
            return parseError(where() + ": expected '{'");
        if (eat('}'))
            return entries;
        while (true) {
            auto key = parseString();
            if (!key.isOk())
                return key.status();
            if (!eat(':'))
                return parseError(where() + ": expected ':'");
            auto value = parseScalar();
            if (!value.isOk())
                return Status(
                    ErrorCode::ParseError,
                    sourceName + ": key \"" + key.value() +
                        "\" has a non-scalar value (nested specs are "
                        "not supported)");
            entries.emplace_back(std::move(key).value(),
                                 std::move(value).value());
            if (eat('}'))
                return entries;
            if (!eat(','))
                return parseError(where() + ": expected ',' or '}'");
        }
    }
};

Result<SpecFile>
parseJson(const std::string &text, const std::string &source_name)
{
    JsonReader reader{text, source_name};
    if (!reader.eat('{'))
        return parseError(source_name + ": expected a JSON object");

    SpecFile file;
    std::vector<std::pair<std::string, std::string>> top_scalars;
    bool saw_spec_object = false;

    if (!reader.eat('}')) {
        while (true) {
            auto key = reader.parseString();
            if (!key.isOk())
                return key.status();
            if (!reader.eat(':'))
                return parseError(reader.where() + ": expected ':'");
            const std::string &k = key.value();
            reader.skipWs();
            if (k == "spec" && reader.pos < text.size() &&
                text[reader.pos] == '{') {
                auto entries = reader.parseFlatObject();
                if (!entries.isOk())
                    return entries.status();
                file.entries = std::move(entries).value();
                saw_spec_object = true;
            } else if (k == "experiment") {
                auto name = reader.parseString();
                if (!name.isOk())
                    return name.status();
                file.experiment = std::move(name).value();
            } else {
                reader.skipWs();
                const bool nested = reader.pos < text.size() &&
                                    (text[reader.pos] == '{' ||
                                     text[reader.pos] == '[');
                if (nested) {
                    // Tolerated only in the artifact form, where the
                    // parameters come from the "spec" object anyway.
                    BF_RETURN_IF_ERROR(reader.skipValue());
                    top_scalars.emplace_back(k, std::string());
                } else {
                    auto value = reader.parseScalar();
                    if (!value.isOk())
                        return value.status();
                    top_scalars.emplace_back(k,
                                             std::move(value).value());
                }
            }
            if (reader.eat('}'))
                break;
            if (!reader.eat(','))
                return parseError(reader.where() +
                                  ": expected ',' or '}'");
        }
    }

    // Artifact schema versioning: a missing "schemaVersion" is the v1
    // artifact (or a flat spec, which never carries one); anything newer
    // than this build understands is rejected by name rather than
    // misread.
    for (auto it = top_scalars.begin(); it != top_scalars.end(); ++it) {
        if (it->first != "schemaVersion")
            continue;
        char *end = nullptr;
        const long long version = std::strtoll(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0' || version < 1)
            return parseError(source_name + ": malformed schemaVersion \"" +
                              it->second + "\"");
        if (version > kArtifactSchemaVersion)
            return parseError(
                source_name + ": artifact schemaVersion " +
                std::to_string(version) + " is newer than the supported " +
                std::to_string(kArtifactSchemaVersion) +
                "; re-emit the artifact with this build or upgrade");
        top_scalars.erase(it);
        break;
    }

    if (!saw_spec_object) {
        // Flat form: every top-level key (minus "experiment") is a
        // parameter; nested values have no meaning here.
        for (auto &[k, v] : top_scalars)
            file.entries.emplace_back(std::move(k), std::move(v));
    }
    reader.skipWs();
    if (reader.pos != text.size())
        return parseError(reader.where() +
                          ": trailing content after JSON object");
    return file;
}

} // namespace

Result<SpecFile>
parseSpecText(const std::string &text, const std::string &source_name)
{
    const std::string trimmed = trim(text);
    if (trimmed.empty())
        return parseError(source_name + ": empty spec");
    if (trimmed.front() == '{')
        return parseJson(trimmed, source_name);
    return parseToml(text, source_name);
}

} // namespace bigfish::spec
