#include "rules.hh"

#include <cstddef>

namespace bigfish::lint {

bool
isLintKeyword(const std::string &s)
{
    static const std::set<std::string> kKeywords = {
        "if",     "for",    "while",  "switch",   "return", "sizeof",
        "case",   "do",     "else",   "operator", "new",    "delete",
        "throw",  "catch",  "static", "const",    "auto",   "void",
        "class",  "struct", "using",  "typename", "template"};
    return kKeywords.count(s) > 0;
}

std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")" && --depth == 0)
            return i;
    }
    return kTokNpos;
}

std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}" && --depth == 0)
            return i;
    }
    return kTokNpos;
}

std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (t == ">>") {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (t == ";" || t == "{") {
            return kTokNpos;
        }
    }
    return kTokNpos;
}

void
emitDiagnostic(std::vector<Diagnostic> &out, const LexedFile &file,
               const std::string &relPath, int line, const std::string &rule,
               const std::string &message)
{
    if (!isSuppressed(file, line, rule))
        out.push_back({relPath, line, rule, message});
}

bool
looksLikeTypeName(const std::string &t)
{
    static const std::set<std::string> kTypes = {
        "double", "float", "auto",  "int",  "long",
        "short",  "unsigned", "char", "bool", "size_t"};
    if (kTypes.count(t) > 0)
        return true;
    if (t.size() > 2 && t.compare(t.size() - 2, 2, "_t") == 0)
        return true;
    return t == ">"; // closing a templated type: std::vector<double> v
}

namespace {

constexpr std::size_t kNpos = kTokNpos;

bool
isKeyword(const std::string &s)
{
    return isLintKeyword(s);
}

/**
 * Walks backwards from @p i (exclusive) over a member/namespace chain
 * like `results[a].collector->`, returning the index of the token just
 * before the whole chain, or kNpos at start-of-file.
 */
std::size_t
chainStart(const std::vector<Token> &toks, std::size_t i)
{
    std::size_t j = i;
    while (j != kNpos && j > 0) {
        const std::string &t = toks[j - 1].text;
        if (t == "." || t == "->" || t == "::") {
            j -= 2; // step over the separator and the name before it
            // The name may itself be a call/index result: skip its
            // balanced () or [] backwards.
            while (j != kNpos && j + 1 > 0 &&
                   (toks[j].text == ")" || toks[j].text == "]")) {
                const std::string close = toks[j].text;
                const std::string open = close == ")" ? "(" : "[";
                int depth = 0;
                std::size_t k = j + 1;
                while (k > 0) {
                    --k;
                    if (toks[k].text == close)
                        ++depth;
                    else if (toks[k].text == open && --depth == 0)
                        break;
                }
                j = k == 0 ? kNpos : k - 1;
            }
        } else {
            break;
        }
    }
    return j == kNpos || j == 0 ? kNpos : j - 1;
}

void
emit(std::vector<Diagnostic> &out, const LexedFile &file,
     const std::string &relPath, int line, const std::string &rule,
     const std::string &message)
{
    emitDiagnostic(out, file, relPath, line, rule, message);
}

// --- Rule: nondeterminism ----------------------------------------------

void
ruleNondeterminism(const std::string &relPath, const LexedFile &file,
                   std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kBannedAnywhere = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock", "getenv"};
    static const std::set<std::string> kBannedCalls = {"rand", "srand",
                                                       "time", "clock"};
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier)
            continue;
        const std::string &t = toks[i].text;
        const bool member_access =
            i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
        if (kBannedAnywhere.count(t) > 0 && !member_access) {
            emit(out, file, relPath, toks[i].line, "nondeterminism",
                 "'" + t + "' is a banned nondeterminism source; derive "
                 "everything from an explicit seed (base/rng.hh) or use "
                 "the allowlisted timing facilities");
            continue;
        }
        // `long time(long x)` declares a member named time — a
        // preceding non-keyword identifier marks a declaration, not a
        // call (`return time(0)` stays a call: `return` is a keyword).
        const bool after_decl_type =
            i > 0 && toks[i - 1].kind == TokenKind::Identifier &&
            toks[i - 1].text != "return" && toks[i - 1].text != "else" &&
            toks[i - 1].text != "do" && toks[i - 1].text != "co_return";
        if (kBannedCalls.count(t) > 0 && !member_access && !after_decl_type &&
            i + 1 < toks.size() && toks[i + 1].text == "(") {
            emit(out, file, relPath, toks[i].line, "nondeterminism",
                 "call to '" + t + "()' is a banned nondeterminism "
                 "source; results must depend only on explicit seeds");
        }
    }
}

// --- Rule: unordered-iteration -----------------------------------------

void
ruleUnorderedIteration(const std::string &relPath, const LexedFile &file,
                       std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto &toks = file.tokens;

    // Pass 1: names of variables declared with an unordered type.
    std::set<std::string> unordered_vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (kUnorderedTypes.count(toks[i].text) == 0)
            continue;
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "<") {
            j = skipAngles(toks, j);
            if (j == kNpos)
                continue;
        }
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokenKind::Identifier &&
            !isKeyword(toks[j].text))
            unordered_vars.insert(toks[j].text);
    }

    const auto isUnorderedExpr = [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
            if (kUnorderedTypes.count(toks[k].text) > 0 ||
                unordered_vars.count(toks[k].text) > 0)
                return true;
        }
        return false;
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        // Range-for whose range expression mentions an unordered
        // container (or a variable declared as one).
        if (toks[i].text == "for" && toks[i + 1].text == "(") {
            const std::size_t close = matchParen(toks, i + 1);
            if (close == kNpos)
                continue;
            std::size_t colon = kNpos;
            int depth = 0;
            for (std::size_t k = i + 1; k < close; ++k) {
                if (toks[k].text == "(" || toks[k].text == "[")
                    ++depth;
                else if (toks[k].text == ")" || toks[k].text == "]")
                    --depth;
                else if (toks[k].text == ":" && depth == 1) {
                    colon = k;
                    break;
                }
            }
            if (colon != kNpos && isUnorderedExpr(colon + 1, close)) {
                emit(out, file, relPath, toks[i].line,
                     "unordered-iteration",
                     "range-for over an unordered container: bucket "
                     "order is implementation-defined and leaks into "
                     "results; sort keys first or use an ordered "
                     "container (std::map / sorted vector)");
            }
            continue;
        }
        // Iterator harvesting from a known-unordered variable.
        if (unordered_vars.count(toks[i].text) > 0 &&
            toks[i + 1].text == "." && i + 2 < toks.size()) {
            static const std::set<std::string> kIterFns = {
                "begin", "cbegin", "end", "cend", "rbegin", "rend"};
            if (kIterFns.count(toks[i + 2].text) > 0) {
                emit(out, file, relPath, toks[i].line,
                     "unordered-iteration",
                     "iterating '" + toks[i].text + "' (an unordered "
                     "container): bucket order is implementation-"
                     "defined and leaks into results");
            }
        }
    }
}

// --- Rule: discarded-status --------------------------------------------

std::set<std::string>
collectReturnersImpl(const LexedFile &file,
                     std::vector<std::size_t> *declSites)
{
    std::set<std::string> names;
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text != "Status" && toks[i].text != "Result")
            continue;
        // `Status::ok()`-style qualified *uses* are not declarations.
        if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
            continue;
        std::size_t j = i + 1;
        if (toks[i].text == "Result") {
            if (j >= toks.size() || toks[j].text != "<")
                continue;
            j = skipAngles(toks, j);
            if (j == kNpos)
                continue;
        }
        if (j + 1 < toks.size() && toks[j].kind == TokenKind::Identifier &&
            !isKeyword(toks[j].text) && toks[j + 1].text == "(") {
            names.insert(toks[j].text);
            if (declSites != nullptr)
                declSites->push_back(i);
        }
    }
    return names;
}

void
ruleDiscardedStatus(const std::string &relPath, const LexedFile &file,
                    bool isHeader, const std::set<std::string> &returners,
                    std::vector<Diagnostic> &out)
{
    const auto &toks = file.tokens;

    // Half 1 (headers only): declarations must carry [[nodiscard]].
    if (isHeader) {
        std::vector<std::size_t> decls;
        collectReturnersImpl(file, &decls);
        for (std::size_t at : decls) {
            bool has_attr = false;
            for (std::size_t back = 1; back <= 10 && back <= at; ++back) {
                const std::string &t = toks[at - back].text;
                if (t == "nodiscard") {
                    has_attr = true;
                    break;
                }
                if (t == ";" || t == "{" || t == "}" || t == "(")
                    break;
            }
            if (!has_attr) {
                emit(out, file, relPath, toks[at].line, "discarded-status",
                     "declaration returning " + toks[at].text +
                         " is missing [[nodiscard]]");
            }
        }
    }

    // Half 2: a statement-level call to a Status/Result returner whose
    // value is dropped on the floor.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            returners.count(toks[i].text) == 0 || toks[i + 1].text != "(")
            continue;
        const std::size_t close = matchParen(toks, i + 1);
        if (close == kNpos || close + 1 >= toks.size() ||
            toks[close + 1].text != ";")
            continue;
        const std::size_t before = chainStart(toks, i);
        const std::string prev =
            before == kNpos ? std::string("{") : toks[before].text;
        // A preceding identifier means this is itself a declaration
        // (`Status foo(...);`), not a call. A `(void)` cast is the
        // sanctioned I-really-mean-it discard marker.
        if (prev == ")" && before != kNpos && before >= 2 &&
            toks[before - 1].text == "void" && toks[before - 2].text == "(")
            continue;
        static const std::set<std::string> kStatementStarts = {
            ";", "{", "}", "else", "do", ")"};
        if (kStatementStarts.count(prev) > 0) {
            emit(out, file, relPath, toks[i].line, "discarded-status",
                 "result of '" + toks[i].text + "' (returns Status/"
                 "Result) is discarded; assign it, return it, or wrap "
                 "it in BF_RETURN_IF_ERROR / ...OrDie()");
        }
    }
}

// --- Rule: raw-thread --------------------------------------------------

void
ruleRawThread(const std::string &relPath, const LexedFile &file,
              std::vector<Diagnostic> &out)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text == "std" && toks[i + 1].text == "::" &&
            (toks[i + 2].text == "thread" || toks[i + 2].text == "jthread" ||
             toks[i + 2].text == "async")) {
            // `std::thread::hardware_concurrency()` and friends query;
            // only naming the type itself creates an execution context.
            if (i + 3 < toks.size() && toks[i + 3].text == "::")
                continue;
            emit(out, file, relPath, toks[i].line, "raw-thread",
                 "raw 'std::" + toks[i + 2].text + "' outside "
                 "base/thread_pool: use parallelFor/parallelMap so "
                 "scheduling stays deterministic and exception-safe");
        }
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text == "pthread_create") {
            emit(out, file, relPath, toks[i].line, "raw-thread",
                 "'pthread_create' outside base/thread_pool: use "
                 "parallelFor/parallelMap");
        }
    }
}

// --- Rule: allocating-algorithm ----------------------------------------

void
ruleAllocatingAlgorithm(const std::string &relPath, const LexedFile &file,
                        std::vector<Diagnostic> &out)
{
    // These three allocate a hidden temporary buffer per call (libstdc++
    // get_temporary_buffer) and silently degrade to O(n log n) in-place
    // when the allocation fails — both properties are invisible at the
    // call site. The simulator's (site,run) grid executes its hot path
    // millions of times, so per-call hidden allocations are exactly the
    // cold-run cost class PR 10 removed (DESIGN.md §13).
    static const std::set<std::string> kAllocating = {
        "inplace_merge", "stable_sort", "stable_partition"};
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text == "std" && toks[i + 1].text == "::" &&
            kAllocating.count(toks[i + 2].text) != 0) {
            emit(out, file, relPath, toks[i].line, "allocating-algorithm",
                 "'std::" + toks[i + 2].text + "' allocates a hidden "
                 "temporary buffer per call; in simulator hot paths use "
                 "an arena-backed explicit merge (sim/scratch.hh) or a "
                 "plain std::sort instead");
        }
    }
}

// --- Rule: parallel-float-accum ----------------------------------------

void
ruleParallelFloatAccum(const std::string &relPath, const LexedFile &file,
                       std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kCompound = {"+=", "-=", "*=", "/="};
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if ((toks[i].text != "parallelFor" && toks[i].text != "parallelMap") ||
            toks[i + 1].text != "(")
            continue;
        const std::size_t close = matchParen(toks, i + 1);
        if (close == kNpos)
            continue;
        for (std::size_t k = i + 2; k < close; ++k) {
            if (kCompound.count(toks[k].text) == 0 || k == 0)
                continue;
            const Token &lhs = toks[k - 1];
            // `slots[i] += ...` / `(*p) += ...` target pre-sized slots;
            // only a bare identifier target is a reduction.
            if (lhs.kind != TokenKind::Identifier)
                continue;
            // A variable declared inside the parallel body is a
            // lambda-local accumulator, which is fine.
            bool local = false;
            for (std::size_t m = i + 2; m + 1 < k; ++m) {
                if (toks[m + 1].text == lhs.text &&
                    looksLikeTypeName(toks[m].text)) {
                    local = true;
                    break;
                }
            }
            if (!local) {
                emit(out, file, relPath, lhs.line, "parallel-float-accum",
                     "'" + lhs.text + " " + toks[k].text + " ...' inside "
                     "a parallelFor/parallelMap body accumulates onto a "
                     "captured variable: write per-index results into "
                     "pre-sized slots and reduce serially afterwards");
            }
        }
    }
}

// --- Rule: intrinsics-header -------------------------------------------

void
ruleIntrinsicsHeader(const std::string &relPath, const LexedFile &file,
                     std::vector<Diagnostic> &out)
{
    // The x86 SIMD intrinsics headers (and the architecture-specific
    // vector headers of other ISAs). base/simd.hh is the one
    // allowlisted home; everything else must reach vector code through
    // the ml/kernels.hh dispatch layer.
    static const std::set<std::string> kIntrinsicsHeaders = {
        "immintrin", "emmintrin", "xmmintrin", "pmmintrin", "tmmintrin",
        "smmintrin", "nmmintrin", "wmmintrin", "ammintrin", "x86intrin",
        "arm_neon"};
    const auto &toks = file.tokens;
    // The lexer is not a preprocessor: `#include <immintrin.h>` lexes
    // as the token run  #  include  <  immintrin  .  h  >. The quoted
    // spelling lexes to a single String token (quotes included, so it
    // can never equal a bare header name here), but system headers are
    // only ever included with angle brackets in this tree.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "#" || toks[i + 1].text != "include" ||
            toks[i + 2].text != "<")
            continue;
        const std::string &header = toks[i + 3].text;
        if (kIntrinsicsHeaders.count(header) == 0)
            continue;
        emit(out, file, relPath, toks[i].line, "intrinsics-header",
             "'" + header + ".h' included outside base/simd.hh: "
             "ISA-specific intrinsics are confined there; dispatch "
             "through ml/kernels.hh instead");
    }
}

// --- Rule: stage-timing ------------------------------------------------

void
ruleStageTiming(const std::string &relPath, const LexedFile &file,
                std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kTimingNames = {
        "Stopwatch", "ProcessCpuStopwatch", "ThreadCpuStopwatch",
        "CpuStopwatchBase", "posixClockSeconds"};
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Even the include is a finding: pipeline code has no business
        // seeing the stopwatch header.
        if (toks[i].text == "#" && i + 2 < toks.size() &&
            toks[i + 1].text == "include" &&
            toks[i + 2].text == "\"base/stopwatch.hh\"") {
            emit(out, file, relPath, toks[i].line, "stage-timing",
                 "'base/stopwatch.hh' included outside the stage "
                 "framework: phase timing must flow through "
                 "StageGraph::run() (core/stage.hh) so --explain and "
                 "the artifact's per-stage table stay the single "
                 "source of truth");
            continue;
        }
        if (toks[i].kind != TokenKind::Identifier ||
            kTimingNames.count(toks[i].text) == 0)
            continue;
        const bool member_access =
            i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
        if (member_access)
            continue;
        emit(out, file, relPath, toks[i].line, "stage-timing",
             "'" + toks[i].text + "' used outside the stage framework: "
             "phase timing must flow through StageGraph::run() "
             "(core/stage.hh) so --explain and the artifact's per-stage "
             "table stay the single source of truth");
    }
}

} // namespace

std::set<std::string>
collectStatusReturners(const LexedFile &file)
{
    return collectReturnersImpl(file, nullptr);
}

std::vector<Diagnostic>
runRules(const std::string &relPath, const LexedFile &file, bool isHeader,
         const Config &config, const std::set<std::string> &statusReturners)
{
    std::vector<Diagnostic> out;
    const auto wants = [&](const char *rule) {
        return config.ruleEnabled(rule) &&
               !config.isAllowlisted(rule, relPath);
    };
    if (wants("nondeterminism"))
        ruleNondeterminism(relPath, file, out);
    if (wants("unordered-iteration"))
        ruleUnorderedIteration(relPath, file, out);
    if (wants("discarded-status"))
        ruleDiscardedStatus(relPath, file, isHeader, statusReturners, out);
    if (wants("raw-thread"))
        ruleRawThread(relPath, file, out);
    if (wants("allocating-algorithm"))
        ruleAllocatingAlgorithm(relPath, file, out);
    if (wants("parallel-float-accum"))
        ruleParallelFloatAccum(relPath, file, out);
    if (wants("intrinsics-header"))
        ruleIntrinsicsHeader(relPath, file, out);
    if (wants("stage-timing"))
        ruleStageTiming(relPath, file, out);
    return out;
}

} // namespace bigfish::lint
