/**
 * @file
 * bigfish-lint configuration: rule toggles and per-rule path allowlists.
 *
 * Loaded from a TOML subset (tools/lint/bigfish-lint.toml) so the config
 * needs no third-party parser. Supported grammar:
 *
 *   # comment
 *   [rules]
 *   nondeterminism = true          # booleans toggle rules
 *   [allow.nondeterminism]
 *   paths = ["bench/", "src/base/thread_pool.cc"]
 *
 * Allowlist entries are path prefixes, matched against the path of the
 * scanned file relative to the scan root with forward slashes; a prefix
 * ending in '/' allowlists a whole directory.
 */

#ifndef BIGFISH_LINT_CONFIG_HH
#define BIGFISH_LINT_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace bigfish::lint {

/** Stable identifiers of every rule the linter implements. */
std::vector<std::string> allRuleNames();

class Config
{
  public:
    /** All rules enabled, empty allowlists. */
    Config();

    /**
     * Parses the TOML subset in @p text. Returns an empty error string
     * on success, else a human-readable parse error; the config is
     * unspecified after a failure.
     */
    std::string parse(const std::string &text);

    /** Enables or disables one rule; unknown names return false. */
    bool setRuleEnabled(const std::string &rule, bool enabled);

    bool ruleEnabled(const std::string &rule) const;

    /** True when @p relPath starts with an allowlisted prefix of @p rule. */
    bool isAllowlisted(const std::string &rule,
                       const std::string &relPath) const;

    void addAllowlist(const std::string &rule, const std::string &prefix);

  private:
    std::map<std::string, bool> enabled_;
    std::map<std::string, std::vector<std::string>> allowlists_;
};

} // namespace bigfish::lint

#endif // BIGFISH_LINT_CONFIG_HH
