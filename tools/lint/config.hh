/**
 * @file
 * bigfish-lint configuration: rule toggles, per-rule path allowlists,
 * the declared layer DAG and reporting options.
 *
 * Loaded from a TOML subset (tools/lint/bigfish-lint.toml) so the config
 * needs no third-party parser. Supported grammar:
 *
 *   # comment
 *   [rules]
 *   nondeterminism = true          # booleans toggle rules
 *   [allow.nondeterminism]
 *   paths = ["bench/", "src/base/thread_pool.cc"]
 *   [layer.sim]                    # one section per architectural layer
 *   paths = ["src/sim/"]           # files belonging to the layer
 *   deps = ["base", "timers"]      # layers it may include (direct)
 *   [report]
 *   baseline = "tools/lint/lint-baseline.txt"
 *
 * Allowlist and layer entries are path prefixes, matched against the
 * path of the scanned file relative to the scan root with forward
 * slashes; a prefix ending in '/' matches a whole directory. The layer
 * dependency lists must themselves form a DAG; parse() rejects a config
 * whose declared layers are cyclic or name unknown layers. Files that
 * match no layer (tests, tools, bench) are unconstrained.
 */

#ifndef BIGFISH_LINT_CONFIG_HH
#define BIGFISH_LINT_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace bigfish::lint {

/** Stable identifiers of every rule the linter implements. */
std::vector<std::string> allRuleNames();

/** One declared architectural layer (see the [layer.*] sections). */
struct Layer
{
    std::vector<std::string> paths; ///< Path prefixes owned by the layer.
    std::vector<std::string> deps;  ///< Layers it may include directly.
};

class Config
{
  public:
    /** All rules enabled, empty allowlists, no layers declared. */
    Config();

    /**
     * Parses the TOML subset in @p text. Returns an empty error string
     * on success, else a human-readable parse error; the config is
     * unspecified after a failure.
     */
    std::string parse(const std::string &text);

    /** Enables or disables one rule; unknown names return false. */
    bool setRuleEnabled(const std::string &rule, bool enabled);

    bool ruleEnabled(const std::string &rule) const;

    /** True when @p relPath starts with an allowlisted prefix of @p rule. */
    bool isAllowlisted(const std::string &rule,
                       const std::string &relPath) const;

    void addAllowlist(const std::string &rule, const std::string &prefix);

    /** The declared layer DAG, keyed by layer name (empty when unset). */
    const std::map<std::string, Layer> &layers() const { return layers_; }

    /** Layer owning @p relPath, or "" when no layer claims it. */
    std::string layerOf(const std::string &relPath) const;

    /** True when layer @p from may include layer @p to directly. */
    bool layerMayInclude(const std::string &from,
                         const std::string &to) const;

    /** [report] baseline path (relative to the scan root), or "". */
    const std::string &baselinePath() const { return baseline_; }

  private:
    std::map<std::string, bool> enabled_;
    std::map<std::string, std::vector<std::string>> allowlists_;
    std::map<std::string, Layer> layers_;
    std::string baseline_;
};

} // namespace bigfish::lint

#endif // BIGFISH_LINT_CONFIG_HH
