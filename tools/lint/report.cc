#include "report.hh"

#include <fstream>
#include <map>
#include <sstream>

namespace bigfish::lint {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** One-line summaries for SARIF rule metadata, keyed by rule id. */
const std::map<std::string, std::string> &
ruleSummaries()
{
    static const std::map<std::string, std::string> kSummaries = {
        {"nondeterminism",
         "No ambient entropy: results derive from explicit seeds only."},
        {"unordered-iteration",
         "No iteration over unordered containers: bucket order leaks "
         "into results."},
        {"discarded-status",
         "Status/Result returns must be consumed and declared "
         "[[nodiscard]]."},
        {"raw-thread",
         "Raw std::thread/std::async only inside base/thread_pool."},
        {"allocating-algorithm",
         "No hidden-temp-buffer algorithms (inplace_merge, stable_sort, "
         "stable_partition) in hot paths; use the arena merge."},
        {"parallel-float-accum",
         "No compound accumulation onto captured variables in parallel "
         "bodies."},
        {"intrinsics-header",
         "ISA intrinsics headers are confined to base/simd.hh."},
        {"layering",
         "Includes must follow the declared layer DAG and be acyclic."},
        {"unused-include",
         "Quoted in-tree includes whose exports are never referenced "
         "are removable."},
        {"status-swallowed",
         "A Status/Result captured in a void function must be read "
         "before returning."},
        {"ordie-outside-binary",
         "...OrDie() calls are confined to binary-boundary "
         "directories."},
        {"parallel-mutex",
         "No lock acquisition inside parallelFor/parallelMap bodies."},
        {"parallel-capture-race",
         "No writes to captured state without index-derived addressing "
         "in parallel bodies."},
        {"parallel-shared-rng",
         "No RNG shared across parallel iterations; derive per-cell "
         "streams."},
        {"stage-timing",
         "Phase timing flows through StageGraph::run(); no ad-hoc "
         "stopwatches."},
    };
    return kSummaries;
}

} // namespace

std::string
loadBaseline(const std::string &path, Baseline &out)
{
    std::ifstream in(path);
    if (!in)
        return ""; // missing baseline == empty baseline
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r'))
            line.pop_back();
        if (line.empty())
            continue;
        // file:line:rule — rightmost two colons delimit, so paths with
        // colons (none in this tree) would still need escaping.
        const std::size_t c2 = line.rfind(':');
        const std::size_t c1 =
            c2 == std::string::npos ? std::string::npos
                                    : line.rfind(':', c2 - 1);
        if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0)
            return path + ":" + std::to_string(lineno) +
                   ": expected 'file:line:rule'";
        try {
            out.entries.insert({line.substr(0, c1),
                                std::stoi(line.substr(c1 + 1, c2 - c1 - 1)),
                                line.substr(c2 + 1)});
        } catch (const std::exception &) {
            return path + ":" + std::to_string(lineno) +
                   ": line number is not an integer";
        }
    }
    return "";
}

std::string
writeBaselineFile(const std::string &path,
                  const std::vector<Diagnostic> &diagnostics)
{
    std::ofstream out(path);
    if (!out)
        return "cannot write baseline '" + path + "'";
    out << "# bigfish-lint baseline: findings listed here warn instead of\n"
           "# failing. Keep this file empty on main — fix or suppress\n"
           "# inline with a justification; baseline only during\n"
           "# incremental adoption of a new rule.\n";
    for (const Diagnostic &d : diagnostics)
        out << d.file << ":" << d.line << ":" << d.rule << "\n";
    return out ? "" : "short write to baseline '" + path + "'";
}

void
partitionAgainstBaseline(const std::vector<Diagnostic> &all,
                         const Baseline &baseline,
                         std::vector<Diagnostic> &fresh,
                         std::vector<Diagnostic> &baselined,
                         std::size_t &stale)
{
    std::set<BaselineKey> seen;
    for (const Diagnostic &d : all) {
        if (baseline.contains(d)) {
            baselined.push_back(d);
            seen.insert({d.file, d.line, d.rule});
        } else {
            fresh.push_back(d);
        }
    }
    stale = 0;
    for (const BaselineKey &key : baseline.entries)
        if (seen.count(key) == 0)
            ++stale;
}

std::string
renderText(const std::vector<Diagnostic> &fresh,
           const std::vector<Diagnostic> &baselined,
           std::size_t filesScanned)
{
    std::ostringstream out;
    for (const Diagnostic &d : fresh)
        out << d.file << ":" << d.line << ": [" << d.rule << "] "
            << d.message << "\n";
    for (const Diagnostic &d : baselined)
        out << d.file << ":" << d.line << ": [" << d.rule << "] (baselined) "
            << d.message << "\n";
    out << "bigfish-lint: " << fresh.size() << " finding(s)";
    if (!baselined.empty())
        out << " + " << baselined.size() << " baselined";
    out << " in " << filesScanned << " file(s) scanned\n";
    return out.str();
}

std::string
renderJson(const std::vector<Diagnostic> &fresh,
           const std::vector<Diagnostic> &baselined,
           std::size_t filesScanned)
{
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << filesScanned
        << ",\n  \"count\": " << fresh.size()
        << ",\n  \"baselined\": " << baselined.size()
        << ",\n  \"diagnostics\": [";
    bool first = true;
    const auto record = [&](const Diagnostic &d, bool is_baselined) {
        out << (first ? "" : ",") << "\n    {\"file\": \""
            << jsonEscape(d.file) << "\", \"line\": " << d.line
            << ", \"rule\": \"" << jsonEscape(d.rule)
            << "\", \"baselined\": " << (is_baselined ? "true" : "false")
            << ", \"message\": \"" << jsonEscape(d.message) << "\"}";
        first = false;
    };
    for (const Diagnostic &d : fresh)
        record(d, false);
    for (const Diagnostic &d : baselined)
        record(d, true);
    out << (first ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::string
renderSarif(const std::vector<Diagnostic> &fresh,
            const std::vector<Diagnostic> &baselined)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"bigfish-lint\",\n"
        << "          \"version\": \"2.0.0\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/bigfish-lint\",\n"
        << "          \"rules\": [\n";
    const auto names = allRuleNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto it = ruleSummaries().find(names[i]);
        const std::string text =
            it == ruleSummaries().end() ? names[i] : it->second;
        out << "            {\"id\": \"" << names[i]
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(text) << "\"}}"
            << (i + 1 < names.size() ? "," : "") << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"columnKind\": \"utf16CodeUnits\",\n"
        << "      \"results\": [";
    bool first = true;
    const auto result = [&](const Diagnostic &d, bool is_baselined) {
        out << (first ? "" : ",") << "\n        {\n"
            << "          \"ruleId\": \"" << jsonEscape(d.rule) << "\",\n"
            << "          \"level\": \""
            << (is_baselined ? "warning" : "error") << "\",\n"
            << "          \"baselineState\": \""
            << (is_baselined ? "unchanged" : "new") << "\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(d.message) << "\"},\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\"uri\": \""
            << jsonEscape(d.file) << "\"},\n"
            << "                \"region\": {\"startLine\": " << d.line
            << "}\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }";
        first = false;
    };
    for (const Diagnostic &d : fresh)
        result(d, false);
    for (const Diagnostic &d : baselined)
        result(d, true);
    out << (first ? "]" : "\n      ]") << "\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

} // namespace bigfish::lint
