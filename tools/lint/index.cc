#include "index.hh"

namespace bigfish::lint {

namespace {

/**
 * Finds the body of every `void`-returning function definition and
 * reports Status/Result values captured from an indexed producer into a
 * variable never read again before the function returns.
 */
void
ruleStatusSwallowed(const std::string &relPath, const LexedFile &file,
                    const std::set<std::string> &returners,
                    std::vector<Diagnostic> &out)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "void")
            continue;
        // Parse the (possibly qualified) function name: void A::b(...)
        std::size_t j = i + 1;
        std::string fn_name;
        while (j + 1 < toks.size() &&
               toks[j].kind == TokenKind::Identifier &&
               !isLintKeyword(toks[j].text)) {
            fn_name = toks[j].text;
            if (toks[j + 1].text == "::")
                j += 2;
            else
                break;
        }
        if (fn_name.empty() || j + 1 >= toks.size() ||
            toks[j + 1].text != "(")
            continue;
        const std::size_t close = matchParen(toks, j + 1);
        if (close == kTokNpos)
            continue;
        // Skip trailing specifiers to the body brace; a `;` instead
        // means this was only a declaration.
        std::size_t k = close + 1;
        while (k < toks.size() &&
               (toks[k].text == "const" || toks[k].text == "noexcept" ||
                toks[k].text == "override" || toks[k].text == "final"))
            ++k;
        if (k >= toks.size() || toks[k].text != "{")
            continue;
        const std::size_t body_end = matchBrace(toks, k);
        if (body_end == kTokNpos)
            continue;

        for (std::size_t b = k + 1; b + 3 < body_end; ++b) {
            // Pattern: <declaring-type> var = producer ( ... )
            if (toks[b].kind != TokenKind::Identifier ||
                toks[b + 1].text != "=" ||
                toks[b + 2].kind != TokenKind::Identifier ||
                returners.count(toks[b + 2].text) == 0 ||
                toks[b + 3].text != "(")
                continue;
            const std::string &var = toks[b].text;
            // Only a fresh declaration counts: the token before the
            // variable must be the Status/Result/auto type (or the `>`
            // closing Result<...>); a plain re-assignment to an outer
            // variable is someone else's responsibility to read.
            const std::string &before = toks[b - 1].text;
            if (before != "Status" && before != "auto" && before != ">")
                continue;
            const std::size_t call_close = matchParen(toks, b + 3);
            if (call_close == kTokNpos)
                continue;
            bool read_later = false;
            for (std::size_t r = call_close + 1; r < body_end; ++r) {
                if (toks[r].kind == TokenKind::Identifier &&
                    toks[r].text == var) {
                    read_later = true;
                    break;
                }
            }
            if (!read_later) {
                emitDiagnostic(
                    out, file, relPath, toks[b].line, "status-swallowed",
                    "'" + var + "' captures the Status/Result of '" +
                        toks[b + 2].text + "' but is never read before '" +
                        fn_name + "' returns (void): the error is "
                        "swallowed; check it, log-and-count it, or make "
                        "the function return Status");
            }
        }
        i = k; // resume after the header; nested scans overlap harmlessly
    }
}

/**
 * Flags *calls* to `...OrDie(` wrappers. Definition sites (where the
 * preceding token is the return type or `::`) stay silent, so the
 * wrappers themselves live in library code while their call sites are
 * confined to the allowlisted binary-boundary directories.
 */
void
ruleOrDieOutsideBinary(const std::string &relPath, const LexedFile &file,
                       std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kCallPrev = {
        ".", "->", "=", "(", ",", ";", "{", "}", "return",
        "&&", "||", "?", ":"};
    const auto &toks = file.tokens;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (toks[i].kind != TokenKind::Identifier || t.size() <= 5 ||
            t.compare(t.size() - 5, 5, "OrDie") != 0 ||
            toks[i + 1].text != "(")
            continue;
        if (kCallPrev.count(toks[i - 1].text) == 0)
            continue; // declaration/definition site, not a call
        emitDiagnostic(
            out, file, relPath, toks[i].line, "ordie-outside-binary",
            "call to '" + t + "()' outside a binary boundary: library "
            "code must propagate Status/Result; ...OrDie belongs in "
            "tools/, bench/ and examples/ mains (or an allowlisted "
            "boundary)");
    }
}

} // namespace

SymbolIndex
buildSymbolIndex(const std::map<std::string, const LexedFile *> &lexed)
{
    SymbolIndex index;
    for (const auto &[path, file] : lexed) {
        (void)path;
        const auto names = collectStatusReturners(*file);
        index.statusReturners.insert(names.begin(), names.end());
    }
    return index;
}

std::vector<Diagnostic>
runErrorFlowRules(const std::string &relPath, const LexedFile &file,
                  const Config &config, const SymbolIndex &index)
{
    std::vector<Diagnostic> out;
    const auto wants = [&](const char *rule) {
        return config.ruleEnabled(rule) &&
               !config.isAllowlisted(rule, relPath);
    };
    if (wants("status-swallowed"))
        ruleStatusSwallowed(relPath, file, index.statusReturners, out);
    if (wants("ordie-outside-binary"))
        ruleOrDieOutsideBinary(relPath, file, out);
    return out;
}

} // namespace bigfish::lint
