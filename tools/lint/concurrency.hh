/**
 * @file
 * Pass 3 of bigfish-lint v2: the parallelFor/parallelMap rule pack.
 *
 * Scoped strictly to lambda bodies passed to parallelFor/parallelMap —
 * the only sanctioned parallel primitives in this tree — the pack
 * encodes the determinism contract of DESIGN.md: every iteration writes
 * only per-index state, takes no locks in the hot body, and derives its
 * randomness from the explicit seed and cell index.
 *
 *  parallel-capture-race — a plain write (`x = ...`, `x++`, `--x`) to a
 *                          by-reference captured variable, or an
 *                          indexed write whose subscript derives from
 *                          neither the lambda parameter nor a body
 *                          local, races across iterations.
 *  parallel-mutex        — lock acquisition (lock_guard, unique_lock,
 *                          scoped_lock, .lock(), pthread_mutex_lock)
 *                          inside the hot body serializes the loop and
 *                          makes completion order observable.
 *  parallel-shared-rng   — an RNG object declared outside the body and
 *                          drawn from inside it is both a data race and
 *                          an iteration-order dependence; derive a
 *                          per-cell stream from the seed and index
 *                          instead (Rng::fork advances the parent, so
 *                          even fork() must happen outside the body).
 */

#ifndef BIGFISH_LINT_CONCURRENCY_HH
#define BIGFISH_LINT_CONCURRENCY_HH

#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"
#include "rules.hh"

namespace bigfish::lint {

/** Runs the three parallel-body rules over one file. */
std::vector<Diagnostic>
runConcurrencyRules(const std::string &relPath, const LexedFile &file,
                    const Config &config);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_CONCURRENCY_HH
