/**
 * @file
 * The per-file bigfish-lint rules (v1 set) plus the shared token
 * helpers every pass builds on. Each rule encodes one invariant the
 * reproduction's results depend on (see DESIGN.md "Static analysis"):
 *
 *  nondeterminism       — no ambient entropy (rand, random_device,
 *                         time, system/steady clocks, getenv) outside
 *                         allowlisted timing/infrastructure files.
 *  unordered-iteration  — no iteration over std::unordered_{map,set}:
 *                         bucket order leaks into results.
 *  discarded-status     — a call returning Status/Result must be
 *                         consumed; Status/Result-returning
 *                         declarations in headers carry [[nodiscard]].
 *  raw-thread           — std::thread/std::async only inside
 *                         base/thread_pool; everything else goes
 *                         through parallelFor/parallelMap.
 *  allocating-algorithm — no std::inplace_merge / stable_sort /
 *                         stable_partition: each allocates a hidden
 *                         temporary buffer per call, the cold-run cost
 *                         class the simulator hot path eliminated
 *                         (DESIGN.md §13); use the SimScratch arena
 *                         merge or a plain std::sort.
 *  parallel-float-accum — no `x += ...` reductions onto captured
 *                         variables inside parallelFor/parallelMap
 *                         bodies; accumulate into pre-sized slots or
 *                         lambda-local variables instead.
 *  intrinsics-header    — ISA-specific intrinsics headers (immintrin.h
 *                         and friends) only inside base/simd.hh; all
 *                         other code dispatches through ml/kernels.hh
 *                         so vector code cannot spread.
 *  stage-timing         — no ad-hoc stopwatches (base/stopwatch.hh,
 *                         posixClockSeconds) outside the stage
 *                         framework: phase timing flows through
 *                         StageGraph::run() so `--explain` and the
 *                         artifact's per-stage table stay the single
 *                         source of truth.
 *
 * The v2 repository-wide passes live next door:
 *  graph.hh       — layering, unused-include (include-graph pass)
 *  index.hh       — status-swallowed, ordie-outside-binary (error flow)
 *  concurrency.hh — parallel-capture-race, parallel-mutex,
 *                   parallel-shared-rng (parallelFor rule pack)
 */

#ifndef BIGFISH_LINT_RULES_HH
#define BIGFISH_LINT_RULES_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"

namespace bigfish::lint {

struct Diagnostic
{
    std::string file; ///< Path relative to the scan root.
    int line;
    std::string rule;
    std::string message;
};

/** Sentinel index for the token-walking helpers below. */
inline constexpr std::size_t kTokNpos = static_cast<std::size_t>(-1);

/** Appends a diagnostic unless @p file suppresses @p rule on @p line. */
void emitDiagnostic(std::vector<Diagnostic> &out, const LexedFile &file,
                    const std::string &relPath, int line,
                    const std::string &rule, const std::string &message);

/** Index of the `)` matching the `(` at @p open, or kTokNpos. */
std::size_t matchParen(const std::vector<Token> &toks, std::size_t open);

/** Index of the `}` matching the `{` at @p open, or kTokNpos. */
std::size_t matchBrace(const std::vector<Token> &toks, std::size_t open);

/**
 * Index just past the `>` matching the `<` at @p open, or kTokNpos.
 * Treats `>>` as two closes; gives up on `;`/`{`.
 */
std::size_t skipAngles(const std::vector<Token> &toks, std::size_t open);

/** True for C++ keywords the rules must not mistake for names. */
bool isLintKeyword(const std::string &s);

/** True when @p t looks like a type name introducing a declaration. */
bool looksLikeTypeName(const std::string &t);

/**
 * Pass 1 of the discarded-status rule: harvests the names of functions
 * declared (or defined) with a Status / Result<...> return type from
 * one file's tokens. The union over all scanned files is the call-site
 * ban set for pass 2.
 */
std::set<std::string> collectStatusReturners(const LexedFile &file);

/**
 * Runs every enabled, non-allowlisted per-file rule over one file.
 *
 * @param relPath          File path relative to the scan root (used in
 *                         diagnostics and for allowlist matching).
 * @param isHeader         True for .hh/.h files; the missing-nodiscard
 *                         half of discarded-status only fires here.
 * @param statusReturners  Union of collectStatusReturners over the scan
 *                         set.
 */
std::vector<Diagnostic> runRules(const std::string &relPath,
                                 const LexedFile &file, bool isHeader,
                                 const Config &config,
                                 const std::set<std::string> &statusReturners);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_RULES_HH
