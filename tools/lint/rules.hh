/**
 * @file
 * The six bigfish-lint rules. Each rule encodes one invariant the
 * reproduction's results depend on (see DESIGN.md "Static analysis"):
 *
 *  nondeterminism       — no ambient entropy (rand, random_device,
 *                         time, system/steady clocks, getenv) outside
 *                         allowlisted timing/infrastructure files.
 *  unordered-iteration  — no iteration over std::unordered_{map,set}:
 *                         bucket order leaks into results.
 *  discarded-status     — a call returning Status/Result must be
 *                         consumed; Status/Result-returning
 *                         declarations in headers carry [[nodiscard]].
 *  raw-thread           — std::thread/std::async only inside
 *                         base/thread_pool; everything else goes
 *                         through parallelFor/parallelMap.
 *  parallel-float-accum — no `x += ...` reductions onto captured
 *                         variables inside parallelFor/parallelMap
 *                         bodies; accumulate into pre-sized slots or
 *                         lambda-local variables instead.
 *  intrinsics-header    — ISA-specific intrinsics headers (immintrin.h
 *                         and friends) only inside base/simd.hh; all
 *                         other code dispatches through ml/kernels.hh
 *                         so vector code cannot spread.
 */

#ifndef BIGFISH_LINT_RULES_HH
#define BIGFISH_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"

namespace bigfish::lint {

struct Diagnostic
{
    std::string file; ///< Path relative to the scan root.
    int line;
    std::string rule;
    std::string message;
};

/**
 * Pass 1 of the discarded-status rule: harvests the names of functions
 * declared (or defined) with a Status / Result<...> return type from
 * one file's tokens. The union over all scanned files is the call-site
 * ban set for pass 2.
 */
std::set<std::string> collectStatusReturners(const LexedFile &file);

/**
 * Runs every enabled, non-allowlisted rule over one file.
 *
 * @param relPath          File path relative to the scan root (used in
 *                         diagnostics and for allowlist matching).
 * @param isHeader         True for .hh/.h files; the missing-nodiscard
 *                         half of discarded-status only fires here.
 * @param statusReturners  Union of collectStatusReturners over the scan
 *                         set.
 */
std::vector<Diagnostic> runRules(const std::string &relPath,
                                 const LexedFile &file, bool isHeader,
                                 const Config &config,
                                 const std::set<std::string> &statusReturners);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_RULES_HH
