// Fixture for inline suppressions: every violation below carries a
// `bigfish-lint: allow(<rule>)` comment (same-line or preceding-line),
// so this file must produce zero diagnostics. tests/lint_test.cc also
// flips the rules off via --disable to prove each fixture's findings
// come from its own rule.
#include <cstdlib>
#include <thread>

void work(int);

int
fixtureBody()
{
    int a = std::rand(); // bigfish-lint: allow(nondeterminism)

    // bigfish-lint: allow(nondeterminism)
    a += static_cast<int>(std::time(nullptr));

    // bigfish-lint: allow(raw-thread)
    std::thread worker(work, a);
    worker.join();

    a += std::rand(); // bigfish-lint: allow(all)
    return a;
}
