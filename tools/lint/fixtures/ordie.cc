// Fixture for the `ordie-outside-binary` rule: ...OrDie() aborts the
// process, so its call sites are confined to allowlisted binary
// boundaries (tools/, bench/, examples/, tests/ in the real config —
// nothing is allowlisted here, so these calls fire). Declaration and
// definition sites stay silent: the wrappers themselves live in
// library code.

namespace fixture_ordie {

struct Loaded
{
    int value;
};

struct ResultLike
{
    Loaded valueOrDie() const; // declaration site: clean
};

ResultLike fetch();
Loaded loadAllOrDie(); // declaration site: clean

int
misuse()
{
    Loaded direct = loadAllOrDie();    // expect-lint: ordie-outside-binary
    return fetch().valueOrDie().value; // expect-lint: ordie-outside-binary
}

} // namespace fixture_ordie
