// Fixture for the `unordered-iteration` rule: iterating a hash
// container lets bucket order leak into results. Lookup/insert is
// fine; only iteration is flagged.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int
fixtureBody()
{
    std::unordered_map<std::string, int> counts;
    std::unordered_set<int> seen;
    std::map<std::string, int> ordered;
    int total = 0;

    counts["a"] = 1;      // lookup/insert on unordered: clean
    seen.insert(7);       // insert-only use: clean

    for (const auto &entry : counts)          // expect-lint: unordered-iteration
        total += entry.second;

    for (auto it = counts.begin(); it != counts.end(); ++it)  // expect-lint: unordered-iteration
        total += it->second;

    for (const auto &entry : ordered)  // ordered container: clean
        total += entry.second;

    // Deterministic pattern: extract keys, sort, iterate the vector.
    std::vector<std::string> keys;
    keys.reserve(counts.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        total += static_cast<int>(keys[i].size());
    std::sort(keys.begin(), keys.end());

    return total + static_cast<int>(seen.count(7));
}
