// Fixture for the declaration half of the `discarded-status` rule:
// header declarations returning Status/Result must carry
// [[nodiscard]] so the compiler enforces consumption even on paths the
// linter's call-site heuristic cannot see.
#ifndef BIGFISH_LINT_FIXTURE_MISSING_NODISCARD_HH
#define BIGFISH_LINT_FIXTURE_MISSING_NODISCARD_HH

namespace fixture_nd {

struct Status
{
    bool isOk() const { return true; }
};

template <typename T>
struct Result
{
    bool isOk() const { return true; }
};

Status plainDeclaration();                    // expect-lint: discarded-status
Result<int> plainResultDeclaration();         // expect-lint: discarded-status

[[nodiscard]] Status attributedDeclaration();           // clean
[[nodiscard]] Result<int> attributedResultDeclaration(); // clean

struct Store
{
    Status unmarkedMethod();                  // expect-lint: discarded-status
    [[nodiscard]] Status markedMethod();      // clean
};

} // namespace fixture_nd

#endif // BIGFISH_LINT_FIXTURE_MISSING_NODISCARD_HH
