// Fixture for the `parallel-mutex` rule: lock acquisition inside a
// parallelFor/parallelMap body serializes the hot loop and makes
// completion order observable; shared state belongs outside the
// region or in per-index slots.
#include <cstddef>
#include <mutex>

// Stand-in so the fixture scans like real call sites.
template <typename Fn>
void parallelFor(std::size_t n, Fn &&fn);

void
fixtureBody(std::mutex &m, int *slots)
{
    parallelFor(8, [&](std::size_t i) {
        std::lock_guard<std::mutex> guard(m); // expect-lint: parallel-mutex
        slots[i] = static_cast<int>(i);
    });
    parallelFor(8, [&](std::size_t i) {
        m.lock(); // expect-lint: parallel-mutex
        slots[i] = 0;
        m.unlock();
    });
    std::lock_guard<std::mutex> outside(m); // outside the body: clean
    slots[0] = 1;
}
