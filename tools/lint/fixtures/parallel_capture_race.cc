// Fixture for the `parallel-capture-race` rule: plain writes and
// increments to by-reference captures race across iterations, as do
// indexed writes whose subscript derives from neither the lambda
// parameter nor a body local. Per-index slots and body locals are the
// sanctioned patterns. std::atomic counters are exempt (no race).
#include <atomic>
#include <cstddef>
#include <vector>

// Stand-ins so the fixture scans like real call sites.
template <typename Fn>
void parallelFor(std::size_t n, Fn &&fn);

void
fixtureBody(std::vector<int> &slots, std::vector<int> &grid)
{
    bool done = false;
    int last = 0;
    std::size_t cursor = 0;
    std::atomic<int> visits{0};

    parallelFor(slots.size(), [&](std::size_t i) {
        done = true;       // expect-lint: parallel-capture-race
        ++last;            // expect-lint: parallel-capture-race
        grid[cursor] = 1;  // expect-lint: parallel-capture-race
        slots[i] = 2;      // per-index slot: clean
        ++slots[i];        // per-index increment: clean
        ++visits;          // atomic counter: clean
        int local = 0;
        local = static_cast<int>(i); // body local: clean
        slots[local] = 3;            // subscript from a local: clean
    });
    done = last > 0; // outside the body: clean
}
