// Fixture for the `parallel-shared-rng` rule: drawing from (or
// forking) an RNG shared across parallel iterations is a data race
// and an iteration-order dependence. The sanctioned pattern derives a
// fresh per-cell stream from the explicit seed and cell index inside
// the body.
#include <cstddef>

// Stand-ins matching the tree's deterministic RNG shape.
struct Rng
{
    explicit Rng(unsigned long seed);
    unsigned long next();
};

template <typename Fn>
void parallelFor(std::size_t n, Fn &&fn);

void
fixtureBody(Rng &shared, unsigned long *out)
{
    parallelFor(16, [&](std::size_t i) {
        out[i] = shared.next(); // expect-lint: parallel-shared-rng
        Rng cell(123u + static_cast<unsigned long>(i));
        out[i] += cell.next(); // per-cell stream: clean
    });
}
