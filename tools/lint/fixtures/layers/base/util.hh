// Bottom of the fixture layer DAG: no dependencies, one export.
#ifndef FIXTURE_LAYERS_BASE_UTIL_HH
#define FIXTURE_LAYERS_BASE_UTIL_HH

inline int
fixtureUtilAdd(int a, int b)
{
    return a + b;
}

#endif
