// Upward include: base is the bottom layer, so reaching up into sim
// violates the DAG declared in fixtures.toml.
#ifndef FIXTURE_LAYERS_BASE_USES_SIM_HH
#define FIXTURE_LAYERS_BASE_USES_SIM_HH

#include "layers/sim/engine.hh" // expect-lint: layering

inline int
fixtureBadReachUp(int t)
{
    return fixtureEngineTick(t);
}

#endif
