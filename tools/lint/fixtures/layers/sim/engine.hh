// Middle layer: sim may include base (declared dep), and does.
#ifndef FIXTURE_LAYERS_SIM_ENGINE_HH
#define FIXTURE_LAYERS_SIM_ENGINE_HH

#include "layers/base/util.hh"

inline int
fixtureEngineTick(int t)
{
    return fixtureUtilAdd(t, 1);
}

#endif
