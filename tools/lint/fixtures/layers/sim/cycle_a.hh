// Half of an include cycle inside one layer. Same-layer includes pass
// the DAG check, so the cycle finding is the only diagnostic — and it
// reports on the back edge, which the DFS (sorted file order) meets in
// cycle_b.hh.
#ifndef FIXTURE_LAYERS_SIM_CYCLE_A_HH
#define FIXTURE_LAYERS_SIM_CYCLE_A_HH

#include "layers/sim/cycle_b.hh"

inline int
fixtureCycleA(int t)
{
    return t > 0 ? fixtureCycleB(t - 1) : 0;
}

#endif
