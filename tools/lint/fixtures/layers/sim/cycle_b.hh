// Other half of the include cycle; this include is the back edge.
#ifndef FIXTURE_LAYERS_SIM_CYCLE_B_HH
#define FIXTURE_LAYERS_SIM_CYCLE_B_HH

#include "layers/sim/cycle_a.hh" // expect-lint: layering

inline int
fixtureCycleB(int t)
{
    return t > 0 ? fixtureCycleA(t - 1) : 1;
}

#endif
