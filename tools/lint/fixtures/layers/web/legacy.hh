// Allowlisted exception: web's declared deps are [base] only, so this
// sim include violates the DAG — but fixtures.toml allowlists exactly
// this file for the layering rule, so no finding is expected.
#ifndef FIXTURE_LAYERS_WEB_LEGACY_HH
#define FIXTURE_LAYERS_WEB_LEGACY_HH

#include "layers/sim/engine.hh"

inline int
fixtureLegacyRender(int t)
{
    return fixtureEngineTick(t) * 2;
}

#endif
