// Fixture for the `intrinsics-header` rule: ISA-specific intrinsics
// headers are confined to base/simd.hh so vector code cannot spread;
// everything else dispatches through ml/kernels.hh.
#include <immintrin.h>   // expect-lint: intrinsics-header
#include <emmintrin.h>   // expect-lint: intrinsics-header
#include <xmmintrin.h>   // expect-lint: intrinsics-header
#include <arm_neon.h>    // expect-lint: intrinsics-header

// Known limitation, by lexer design: string literals collapse to
// opaque tokens, so a quoted spelling is invisible. System headers are
// only ever angle-included in this tree.
#include "pmmintrin.h"

// Ordinary headers — including ones whose names merely contain
// "intrin" substrings — are clean.
#include <vector>
#include <cstdint>
#include "base/simd.hh"

int
fixtureBody()
{
    return static_cast<int>(sizeof(std::uint64_t));
}
