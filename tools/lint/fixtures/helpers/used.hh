// Helper header whose export the includer actually references.
#ifndef FIXTURE_HELPERS_USED_HH
#define FIXTURE_HELPERS_USED_HH

inline int
fixtureUsedValue()
{
    return 7;
}

#endif
