// Helper header none of whose exports the includer references.
#ifndef FIXTURE_HELPERS_UNUSED_HH
#define FIXTURE_HELPERS_UNUSED_HH

inline int
fixtureUnusedValue()
{
    return 13;
}

#endif
