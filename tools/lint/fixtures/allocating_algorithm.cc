// Fixture for the `allocating-algorithm` rule: std::inplace_merge,
// std::stable_sort and std::stable_partition each allocate a hidden
// temporary buffer per call (and silently degrade when the allocation
// fails), which is exactly the per-cell cost class the simulator hot
// path eliminated — DESIGN.md §13.
#include <algorithm>
#include <vector>

bool isEven(int v);

void
fixtureBody(std::vector<int> &values, std::size_t mid)
{
    std::stable_sort(values.begin(), values.end());      // expect-lint: allocating-algorithm
    std::inplace_merge(values.begin(),                   // expect-lint: allocating-algorithm
                       values.begin() + mid, values.end());
    std::stable_partition(values.begin(), values.end(),  // expect-lint: allocating-algorithm
                          isEven);

    // A plain sort allocates nothing and stays clean.
    std::sort(values.begin(), values.end());
}
