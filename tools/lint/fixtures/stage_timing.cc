// Fixture for the `stage-timing` rule. Phase timing must flow through
// StageGraph::run() (core/stage.hh); an ad-hoc stopwatch hides its
// stage's cost from --explain and the artifact's per-stage table.
#include "base/stopwatch.hh" // expect-lint: stage-timing

struct StageReport
{
    double cpuSeconds;
    double wallSeconds;
};

double
fixtureBody(StageReport &report)
{
    Stopwatch wall;                            // expect-lint: stage-timing
    ProcessCpuStopwatch cpu;                   // expect-lint: stage-timing
    ThreadCpuStopwatch worker;                 // expect-lint: stage-timing
    double base = detail::posixClockSeconds(0); // expect-lint: stage-timing
    // Names inside comments and strings stay clean: Stopwatch wall;
    const char *doc = "never start a Stopwatch in pipeline code";
    // The framework's own slots carry an inline justification:
    Stopwatch sanctioned; // bigfish-lint: allow(stage-timing)
    report.cpuSeconds = cpu.seconds() + base;
    report.wallSeconds =
        wall.seconds() + worker.seconds() + sanctioned.seconds();
    return report.cpuSeconds + report.wallSeconds + (doc != nullptr);
}
