// Fixture for the `raw-thread` rule: thread creation outside
// base/thread_pool bypasses the deterministic scheduler (static
// chunking, serial N=1 path, exception draining), so raw primitives
// are banned everywhere else.
#include <future>
#include <thread>

void work(int);

void
fixtureBody()
{
    std::thread worker(work, 1);              // expect-lint: raw-thread
    auto task = std::async(work, 2);          // expect-lint: raw-thread
    std::jthread helper(work, 3);             // expect-lint: raw-thread
    worker.join();
    task.wait();

    // Querying concurrency and yielding are clean: neither creates an
    // execution context.
    const unsigned hw = std::thread::hardware_concurrency();
    std::this_thread::yield();
    (void)hw;
}
