// Fixture for the `unused-include` rule: a quoted in-tree include is
// removable when none of its (transitively) exported names appear in
// the includer. The heuristic counts transitive exports as use, so
// every removal bigfish-lint --fix performs is mechanically safe.
#include "helpers/unused.hh" // expect-lint: unused-include
#include "helpers/used.hh"

int
fixtureConsumer()
{
    return fixtureUsedValue();
}
