// Fixture for the `parallel-float-accum` rule: `x += ...` onto a
// captured variable inside a parallelFor/parallelMap body is both a
// race and (for floats) an ordering-dependent reduction. The
// deterministic pattern writes per-index results into pre-sized slots
// and reduces serially afterwards.
#include <cstddef>
#include <vector>

// Stand-ins so the fixture scans like real call sites.
template <typename Fn>
void parallelFor(std::size_t n, Fn &&fn);
template <typename Fn>
int parallelMap(std::size_t n, Fn &&fn);

double
fixtureBody(const std::vector<double> &values)
{
    double total = 0.0;
    std::vector<double> slots(values.size());

    parallelFor(values.size(), [&](std::size_t i) {
        total += values[i];                 // expect-lint: parallel-float-accum
        slots[i] += values[i];              // pre-sized slot: clean
        double local = 0.0;
        local += values[i];                 // lambda-local accumulator: clean
        slots[i] = local;
    });

    int count = parallelMap(values.size(), [&](std::size_t i) {
        total -= values[i];                 // expect-lint: parallel-float-accum
        return static_cast<int>(i);
    });

    // Serial reduction outside the parallel region is the sanctioned
    // pattern and stays clean.
    for (double v : slots)
        total += v;
    return total + count;
}
