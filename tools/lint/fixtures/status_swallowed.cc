// Fixture for the `status-swallowed` rule: a Status/Result captured
// inside a void function and never read before the function returns
// silently drops the error. The producer set is cross-TU (the symbol
// index unions every scanned file), but this fixture is self-contained.

namespace fixture_swallow {

struct Status
{
    bool isOk() const { return true; }
};

Status tryPersist();

void
swallows()
{
    Status s = tryPersist(); // expect-lint: status-swallowed
}

void
reads()
{
    Status s = tryPersist();
    if (!s.isOk())
        return;
}

Status
propagates()
{
    // Not a void function: the caller owns the Status.
    Status s = tryPersist();
    return s;
}

} // namespace fixture_swallow
