// Fixture for the `nondeterminism` rule. Annotated lines must produce
// exactly the named diagnostic; every other line must stay clean
// (tests/lint_test.cc asserts both directions).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long softirq_time(long x) { return x; } // name *contains* time: clean

struct Sampler
{
    long time(long x) { return x; } // member named time: clean
};

int
fixtureBody(Sampler &sampler)
{
    std::srand(42);                       // expect-lint: nondeterminism
    int a = std::rand();                  // expect-lint: nondeterminism
    std::random_device device;            // expect-lint: nondeterminism
    a += static_cast<int>(device());
    long b = std::time(nullptr);          // expect-lint: nondeterminism
    auto t0 = std::chrono::steady_clock::now();  // expect-lint: nondeterminism
    auto t1 = std::chrono::system_clock::now();  // expect-lint: nondeterminism
    const char *env = std::getenv("HOME");       // expect-lint: nondeterminism
    // Banned names inside strings and comments are fine: rand() time()
    const char *doc = "call rand() and getenv() at your peril";
    b += softirq_time(a);      // identifier merely containing 'time'
    b += sampler.time(a);      // member access: clean
    (void)t0;
    (void)t1;
    return static_cast<int>(b) + (env != nullptr) + (doc != nullptr);
}
