// Fixture for the call-site half of the `discarded-status` rule: a
// Status/Result return value must be consumed (assigned, returned,
// branched on, macro-wrapped or explicitly (void)-cast).
//
// The declarations below are the fixture's own returner set; pass 1
// harvests them before pass 2 checks the call sites.

namespace fixture {

struct Status
{
    bool isOk() const { return true; }
};

template <typename T>
struct Result
{
    bool isOk() const { return true; }
    Status status() const { return {}; }
};

Status doWork();
Result<int> compute();

struct Store
{
    Status flush();
};

Status
caller(Store &store, bool flag)
{
    doWork();                                 // expect-lint: discarded-status
    if (flag)
        doWork();                             // expect-lint: discarded-status
    compute();                                // expect-lint: discarded-status
    store.flush();                            // expect-lint: discarded-status

    Status kept = doWork();                   // assigned: clean
    const Result<int> r = compute();          // assigned: clean
    if (!doWork().isOk())                     // branched on: clean
        return doWork();                      // returned: clean
    (void)doWork();                           // explicit discard: clean
    while (compute().isOk())                  // consumed in condition: clean
        break;
    return kept.isOk() && r.isOk() ? doWork() : Status{};
}

} // namespace fixture
