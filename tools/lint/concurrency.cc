#include "concurrency.hh"

#include <set>

namespace bigfish::lint {

namespace {

/** One inline lambda inside a parallelFor/parallelMap call. */
struct ParallelBody
{
    std::size_t begin; ///< Token index just past the body `{`.
    std::size_t end;   ///< Token index of the matching `}`.
    std::set<std::string> params; ///< Lambda parameter names.
};

/**
 * Finds every inline lambda inside the argument list of a
 * parallelFor/parallelMap call. A `[` in argument position (preceded by
 * `(` or `,`) opens a capture list; the following `(...)` supplies the
 * parameter names and the `{...}` is the body.
 */
std::vector<ParallelBody>
collectParallelBodies(const std::vector<Token> &toks)
{
    std::vector<ParallelBody> bodies;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if ((toks[i].text != "parallelFor" && toks[i].text != "parallelMap") ||
            toks[i + 1].text != "(")
            continue;
        const std::size_t close = matchParen(toks, i + 1);
        if (close == kTokNpos)
            continue;
        for (std::size_t k = i + 2; k < close; ++k) {
            if (toks[k].text != "[" ||
                (toks[k - 1].text != "(" && toks[k - 1].text != ","))
                continue;
            // Capture list to `]`.
            std::size_t j = k;
            int depth = 0;
            while (j < close) {
                if (toks[j].text == "[")
                    ++depth;
                else if (toks[j].text == "]" && --depth == 0)
                    break;
                ++j;
            }
            if (j >= close || j + 1 >= close || toks[j + 1].text != "(")
                continue;
            const std::size_t params_close = matchParen(toks, j + 1);
            if (params_close == kTokNpos || params_close + 1 >= close)
                continue;
            ParallelBody body;
            // Parameter names: the identifier directly before each `,`
            // or the closing `)` at depth 1.
            int pdepth = 0;
            for (std::size_t p = j + 1; p <= params_close; ++p) {
                if (toks[p].text == "(" || toks[p].text == "<")
                    ++pdepth;
                else if (toks[p].text == ")" || toks[p].text == ">")
                    --pdepth;
                const bool separator =
                    (toks[p].text == "," && pdepth == 1) ||
                    (p == params_close && pdepth == 0);
                if (separator && p > 0 &&
                    toks[p - 1].kind == TokenKind::Identifier &&
                    !isLintKeyword(toks[p - 1].text))
                    body.params.insert(toks[p - 1].text);
            }
            std::size_t open = params_close + 1;
            while (open < close && toks[open].text != "{")
                ++open; // skips mutable / noexcept / -> ret
            if (open >= close)
                continue;
            const std::size_t body_close = matchBrace(toks, open);
            if (body_close == kTokNpos)
                continue;
            body.begin = open + 1;
            body.end = body_close;
            bodies.push_back(body);
            k = body_close;
        }
        i = close;
    }
    return bodies;
}

/**
 * Names declared inside the body (per-iteration state). A declaration
 * is `<type-ish> name` where type-ish is a known builtin, `_t` name,
 * template close, or any non-keyword identifier directly followed by
 * the declarator pattern (`Type name =`, `Type name(...)`,
 * `Type name;`).
 */
std::set<std::string>
collectBodyLocals(const std::vector<Token> &toks, const ParallelBody &body)
{
    std::set<std::string> locals;
    for (std::size_t m = body.begin; m + 1 < body.end; ++m) {
        const Token &type = toks[m];
        const Token &name = toks[m + 1];
        if (name.kind != TokenKind::Identifier || isLintKeyword(name.text))
            continue;
        if (m >= 1 &&
            (toks[m - 1].text == "." || toks[m - 1].text == "->" ||
             toks[m - 1].text == "::"))
            continue; // member access chain, not a declaration
        const bool typeish = looksLikeTypeName(type.text) ||
                             type.text == "&" || type.text == "*";
        const bool ident_type =
            type.kind == TokenKind::Identifier &&
            !isLintKeyword(type.text) && m + 2 < body.end &&
            (toks[m + 2].text == "=" || toks[m + 2].text == "(" ||
             toks[m + 2].text == "{" || toks[m + 2].text == ";");
        if (typeish || ident_type)
            locals.insert(name.text);
    }
    return locals;
}

/**
 * File-wide harvest of variables declared with std::atomic<...>.
 * Atomic writes from a parallel body are not data races (and counters
 * are order-independent), so capture-race exempts them.
 */
std::set<std::string>
collectAtomicVars(const std::vector<Token> &toks)
{
    std::set<std::string> out;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "atomic" || toks[i + 1].text != "<")
            continue;
        const std::size_t past = skipAngles(toks, i + 1);
        if (past != kTokNpos && past < toks.size() &&
            toks[past].kind == TokenKind::Identifier &&
            !isLintKeyword(toks[past].text))
            out.insert(toks[past].text);
    }
    return out;
}

/** True when any identifier in [begin, end) is a param or body local. */
bool
mentionsIterationState(const std::vector<Token> &toks, std::size_t begin,
                       std::size_t end, const ParallelBody &body,
                       const std::set<std::string> &locals)
{
    for (std::size_t i = begin; i < end; ++i) {
        if (toks[i].kind != TokenKind::Identifier)
            continue;
        if (body.params.count(toks[i].text) > 0 ||
            locals.count(toks[i].text) > 0)
            return true;
    }
    return false;
}

void
ruleCaptureRace(const std::string &relPath, const LexedFile &file,
                std::vector<Diagnostic> &out)
{
    const auto &toks = file.tokens;
    const std::set<std::string> atomics = collectAtomicVars(toks);
    for (const ParallelBody &body : collectParallelBodies(toks)) {
        const std::set<std::string> locals = collectBodyLocals(toks, body);
        for (std::size_t k = body.begin; k < body.end; ++k) {
            // Plain assignment to a bare identifier.
            if (toks[k].text == "=" && k > body.begin) {
                const Token &lhs = toks[k - 1];
                if (lhs.kind == TokenKind::Identifier &&
                    !isLintKeyword(lhs.text) &&
                    atomics.count(lhs.text) == 0) {
                    const std::string &before =
                        k >= 2 ? toks[k - 2].text : std::string("{");
                    const bool member =
                        before == "." || before == "->" || before == "::";
                    const bool declaration =
                        (k >= 2 && toks[k - 2].kind ==
                                       TokenKind::Identifier &&
                         !isLintKeyword(before)) ||
                        before == ">" || before == "&" || before == "*" ||
                        before == "]";
                    if (!member && !declaration &&
                        locals.count(lhs.text) == 0 &&
                        body.params.count(lhs.text) == 0) {
                        emitDiagnostic(
                            out, file, relPath, lhs.line,
                            "parallel-capture-race",
                            "'" + lhs.text + " = ...' writes a captured "
                            "variable inside a parallelFor/parallelMap "
                            "body: a data race across iterations; write "
                            "into a per-index slot instead");
                    }
                }
                // Indexed write: `target[subscript] = ...` must derive
                // the subscript from the iteration (param or local).
                if (lhs.text == "]") {
                    int depth = 0;
                    std::size_t open = k - 1;
                    while (open > body.begin) {
                        if (toks[open].text == "]")
                            ++depth;
                        else if (toks[open].text == "[" && --depth == 0)
                            break;
                        --open;
                    }
                    if (open > body.begin && toks[open].text == "[" &&
                        open >= 1 &&
                        toks[open - 1].kind == TokenKind::Identifier) {
                        const Token &target = toks[open - 1];
                        // `double vals[3] = {...}` declares an array:
                        // a type-ish token before the target is a
                        // declaration, not an indexed write.
                        const bool member =
                            open >= 2 && (toks[open - 2].text == "." ||
                                          toks[open - 2].text == "->");
                        const bool declaration =
                            open >= 2 &&
                            (looksLikeTypeName(toks[open - 2].text) ||
                             (toks[open - 2].kind ==
                                  TokenKind::Identifier &&
                              !isLintKeyword(toks[open - 2].text)));
                        if (!member && !declaration &&
                            locals.count(target.text) == 0 &&
                            !mentionsIterationState(toks, open + 1, k - 1,
                                                    body, locals)) {
                            emitDiagnostic(
                                out, file, relPath, target.line,
                                "parallel-capture-race",
                                "'" + target.text + "[...]' is written "
                                "with a subscript that does not derive "
                                "from the iteration index: iterations "
                                "race on the same slot");
                        }
                    }
                }
            }
            // Increment / decrement of a bare captured identifier.
            if (toks[k].text == "++" || toks[k].text == "--") {
                const Token *operand = nullptr;
                if (k + 1 < body.end &&
                    toks[k + 1].kind == TokenKind::Identifier)
                    operand = &toks[k + 1];
                else if (k > body.begin &&
                         toks[k - 1].kind == TokenKind::Identifier)
                    operand = &toks[k - 1];
                if (operand != nullptr && !isLintKeyword(operand->text) &&
                    locals.count(operand->text) == 0 &&
                    body.params.count(operand->text) == 0 &&
                    atomics.count(operand->text) == 0) {
                    // `x[i]++` and `p->n++` target per-index or member
                    // state; only the bare form is the race heuristic.
                    const std::string &prev =
                        k > body.begin ? toks[k - 1].text : std::string();
                    const bool bare_post =
                        operand == &toks[k - 1] &&
                        (k < 2 || (toks[k - 2].text != "." &&
                                   toks[k - 2].text != "->" &&
                                   toks[k - 2].text != "]"));
                    bool bare_pre = operand == &toks[k + 1] &&
                                    prev != "." && prev != "->";
                    // `++x[i]`: an indexed target is per-slot state when
                    // the subscript derives from the iteration.
                    if (bare_pre && k + 2 < body.end &&
                        toks[k + 2].text == "[") {
                        std::size_t close = k + 2;
                        int depth = 0;
                        while (close < body.end) {
                            if (toks[close].text == "[")
                                ++depth;
                            else if (toks[close].text == "]" &&
                                     --depth == 0)
                                break;
                            ++close;
                        }
                        if (close < body.end &&
                            mentionsIterationState(toks, k + 3, close,
                                                   body, locals))
                            bare_pre = false;
                    }
                    if (bare_post || bare_pre) {
                        emitDiagnostic(
                            out, file, relPath, operand->line,
                            "parallel-capture-race",
                            "'" + operand->text + "' is incremented/"
                            "decremented inside a parallelFor/parallelMap "
                            "body: a data race across iterations; count "
                            "into per-index slots and reduce serially");
                    }
                }
            }
        }
    }
}

void
ruleParallelMutex(const std::string &relPath, const LexedFile &file,
                  std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kLockTypes = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "pthread_mutex_lock"};
    const auto &toks = file.tokens;
    for (const ParallelBody &body : collectParallelBodies(toks)) {
        for (std::size_t k = body.begin; k < body.end; ++k) {
            if (toks[k].kind != TokenKind::Identifier)
                continue;
            const bool lock_type = kLockTypes.count(toks[k].text) > 0;
            const bool lock_call =
                (toks[k].text == "lock" || toks[k].text == "try_lock") &&
                k > body.begin &&
                (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
                k + 1 < body.end && toks[k + 1].text == "(";
            if (lock_type || lock_call) {
                emitDiagnostic(
                    out, file, relPath, toks[k].line, "parallel-mutex",
                    "mutex acquisition ('" + toks[k].text + "') inside a "
                    "parallelFor/parallelMap body serializes the hot "
                    "loop and makes completion order observable; "
                    "precompute shared state outside or write per-index "
                    "slots");
            }
        }
    }
}

void
ruleSharedRng(const std::string &relPath, const LexedFile &file,
              std::vector<Diagnostic> &out)
{
    static const std::set<std::string> kRngTypes = {
        "Rng",          "mt19937",      "mt19937_64",
        "minstd_rand",  "minstd_rand0", "default_random_engine",
        "ranlux24_base", "ranlux48_base"};
    const auto &toks = file.tokens;

    // File-wide harvest of variables declared with an RNG type.
    std::set<std::string> rng_vars;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (kRngTypes.count(toks[i].text) == 0)
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokenKind::Identifier &&
            !isLintKeyword(toks[j].text))
            rng_vars.insert(toks[j].text);
    }
    if (rng_vars.empty())
        return;

    for (const ParallelBody &body : collectParallelBodies(toks)) {
        const std::set<std::string> locals = collectBodyLocals(toks, body);
        std::set<std::string> flagged;
        for (std::size_t k = body.begin; k < body.end; ++k) {
            const Token &tok = toks[k];
            if (tok.kind != TokenKind::Identifier ||
                rng_vars.count(tok.text) == 0 ||
                locals.count(tok.text) > 0 ||
                body.params.count(tok.text) > 0)
                continue;
            if (k > body.begin && (toks[k - 1].text == "." ||
                                   toks[k - 1].text == "->" ||
                                   toks[k - 1].text == "::"))
                continue; // member/scope named like an RNG variable
            if (kRngTypes.count(tok.text) > 0)
                continue; // the type name itself (local declaration)
            if (flagged.insert(tok.text).second) {
                emitDiagnostic(
                    out, file, relPath, tok.line, "parallel-shared-rng",
                    "RNG '" + tok.text + "' is shared across parallel "
                    "iterations: drawing (or forking) from it races and "
                    "makes results depend on scheduling; construct a "
                    "per-cell stream from the seed and index inside the "
                    "body instead");
            }
        }
    }
}

} // namespace

std::vector<Diagnostic>
runConcurrencyRules(const std::string &relPath, const LexedFile &file,
                    const Config &config)
{
    std::vector<Diagnostic> out;
    const auto wants = [&](const char *rule) {
        return config.ruleEnabled(rule) &&
               !config.isAllowlisted(rule, relPath);
    };
    if (wants("parallel-capture-race"))
        ruleCaptureRace(relPath, file, out);
    if (wants("parallel-mutex"))
        ruleParallelMutex(relPath, file, out);
    if (wants("parallel-shared-rng"))
        ruleSharedRng(relPath, file, out);
    return out;
}

} // namespace bigfish::lint
