/**
 * @file
 * Pass 2 of bigfish-lint v2: the cross-TU symbol index and the
 * error-flow rules built on it.
 *
 * The index unions every Status/Result-returning function name over the
 * whole scan set (headers and sources), so a call site in one TU is
 * checked against declarations that live in another. Two rules consume
 * it:
 *
 *  status-swallowed     — inside a function returning void, a Status/
 *                         Result captured from an indexed producer into
 *                         a variable that is never read again before the
 *                         function ends is a transitively swallowed
 *                         error: the caller cannot observe it and the
 *                         callee did not handle it.
 *  ordie-outside-binary — calls to `...OrDie(` wrappers belong at
 *                         binary boundaries (tools/, bench/, examples/,
 *                         test bodies — the allowlist in the config);
 *                         library code must propagate Status/Result
 *                         instead of aborting the process.
 */

#ifndef BIGFISH_LINT_INDEX_HH
#define BIGFISH_LINT_INDEX_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"
#include "rules.hh"

namespace bigfish::lint {

/** Whole-scan-set symbol knowledge shared by the cross-TU rules. */
struct SymbolIndex
{
    /** Names of functions returning Status / Result<...> anywhere. */
    std::set<std::string> statusReturners;
};

/** Builds the index over every lexed file. */
SymbolIndex
buildSymbolIndex(const std::map<std::string, const LexedFile *> &lexed);

/** Runs status-swallowed and ordie-outside-binary over one file. */
std::vector<Diagnostic>
runErrorFlowRules(const std::string &relPath, const LexedFile &file,
                  const Config &config, const SymbolIndex &index);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_INDEX_HH
