/**
 * @file
 * Token-level C++ lexer for bigfish-lint.
 *
 * The linter's rules operate on token streams, never raw text, so a
 * banned name inside a string literal or a comment can never fire a
 * diagnostic, and `softirq_time(` never matches a ban on `time(`.
 * The lexer therefore:
 *
 *  - strips // and C-style comments (recording any
 *    `bigfish-lint: allow(rule, ...)` suppressions they carry),
 *  - lexes string, char and raw-string literals as single String
 *    tokens (normal literals keep their text, quotes included, so the
 *    include-graph pass can read quoted include targets; the quotes
 *    keep them inert in every identifier comparison),
 *  - splits punctuation into the multi-character operators the rules
 *    care about (`+=`, `::`, `->`, ...), and
 *  - tags every token with its 1-based source line.
 *
 * This is deliberately not a preprocessor: macros are scanned as
 * written, which is exactly what a determinism audit wants (the banned
 * call is banned whether or not the macro expands today).
 */

#ifndef BIGFISH_LINT_LEXER_HH
#define BIGFISH_LINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace bigfish::lint {

enum class TokenKind
{
    Identifier, ///< Names and keywords (rules distinguish by text).
    Number,     ///< Numeric literal, value irrelevant to every rule.
    String,     ///< Collapsed string/char/raw-string literal.
    Punct,      ///< Operator or punctuator, possibly multi-character.
};

struct Token
{
    TokenKind kind;
    std::string text;
    int line; ///< 1-based source line.
};

/** A lexed file: its tokens plus the suppressions its comments carry. */
struct LexedFile
{
    std::vector<Token> tokens;

    /**
     * Lines on which a `// bigfish-lint: allow(rule)` comment silences
     * the named rules. A suppression comment covers its own line and
     * the line after it, so both trailing and preceding-line placement
     * work. The wildcard rule name "all" silences every rule.
     */
    std::map<int, std::set<std::string>> suppressions;
};

/** Lexes @p source (the contents of @p path, used in messages only). */
LexedFile lex(const std::string &source);

/** True when @p file suppresses @p rule on @p line. */
bool isSuppressed(const LexedFile &file, int line, const std::string &rule);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_LEXER_HH
