/**
 * @file
 * bigfish-lint v2 reporting layer: baseline bookkeeping and the three
 * output formats (human text, the original --json records, and SARIF
 * 2.1.0 for CI upload).
 *
 * Baseline workflow: a checked-in file of `file:line:rule` triples
 * (comments with #, blank lines allowed). Findings present in the
 * baseline are *warnings* — printed, marked `baselineState:
 * "unchanged"` in SARIF, and excluded from the exit code — while
 * findings absent from it are *new* and fail the run. The tree's
 * baseline (tools/lint/lint-baseline.txt) is kept empty: every real
 * finding is fixed or suppressed inline with a justification, and the
 * baseline exists for incremental adoption of future rules.
 */

#ifndef BIGFISH_LINT_REPORT_HH
#define BIGFISH_LINT_REPORT_HH

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "rules.hh"

namespace bigfish::lint {

using BaselineKey = std::tuple<std::string, int, std::string>;

struct Baseline
{
    std::set<BaselineKey> entries;

    bool contains(const Diagnostic &d) const
    {
        return entries.count({d.file, d.line, d.rule}) > 0;
    }
};

/**
 * Loads @p path. A missing file is an empty baseline (first run);
 * a malformed line is an error. Returns "" or an error message.
 */
std::string loadBaseline(const std::string &path, Baseline &out);

/** Writes @p diagnostics as a baseline file. Returns "" or an error. */
std::string writeBaselineFile(const std::string &path,
                              const std::vector<Diagnostic> &diagnostics);

/**
 * Splits @p all into new findings (fail) and baselined ones (warn),
 * preserving order. @p stale receives baseline entries matching no
 * current finding (informational: the baseline can shrink).
 */
void partitionAgainstBaseline(const std::vector<Diagnostic> &all,
                              const Baseline &baseline,
                              std::vector<Diagnostic> &fresh,
                              std::vector<Diagnostic> &baselined,
                              std::size_t &stale);

/** Human-readable one-line-per-finding report to @p outText. */
std::string renderText(const std::vector<Diagnostic> &fresh,
                       const std::vector<Diagnostic> &baselined,
                       std::size_t filesScanned);

/** The original machine-readable --json document. */
std::string renderJson(const std::vector<Diagnostic> &fresh,
                       const std::vector<Diagnostic> &baselined,
                       std::size_t filesScanned);

/**
 * SARIF 2.1.0 document: one run, every rule in tool.driver.rules,
 * new findings at level "error" (baselineState "new"), baselined at
 * "warning" (baselineState "unchanged"). URIs are scan-root relative,
 * so the document is byte-stable across checkouts (golden-testable).
 */
std::string renderSarif(const std::vector<Diagnostic> &fresh,
                        const std::vector<Diagnostic> &baselined);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_REPORT_HH
