#include "graph.hh"

#include <algorithm>
#include <filesystem>

namespace bigfish::lint {

namespace {

/** Index just past a balanced `[ ... ]` run starting at @p i (attrs). */
std::size_t
skipAttributes(const std::vector<Token> &toks, std::size_t i)
{
    while (i < toks.size() && toks[i].text == "[") {
        int depth = 0;
        while (i < toks.size()) {
            if (toks[i].text == "[")
                ++depth;
            else if (toks[i].text == "]" && --depth == 0) {
                ++i;
                break;
            }
            ++i;
        }
    }
    return i;
}

/** Fundamental-type keywords that can precede a declared name. */
bool
isFundamentalType(const std::string &t)
{
    static const std::set<std::string> kFundamental = {
        "void", "bool",  "char",     "int",    "float", "double",
        "long", "short", "unsigned", "signed", "auto",  "wchar_t"};
    return kFundamental.count(t) > 0;
}

/** Lexically normalizes a relative path ("a/./b", "a/../b"). */
std::string
normalizePath(const std::string &path)
{
    return std::filesystem::path(path).lexically_normal().generic_string();
}

std::string
dirOf(const std::string &relPath)
{
    const std::size_t slash = relPath.rfind('/');
    return slash == std::string::npos ? "" : relPath.substr(0, slash);
}

std::string
stemOf(const std::string &relPath)
{
    std::string base = relPath;
    const std::size_t slash = base.rfind('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    const std::size_t dot = base.rfind('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/** Harvests every `#include` directive from one token stream. */
std::vector<IncludeEdge>
collectIncludes(const LexedFile &file)
{
    std::vector<IncludeEdge> out;
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "#" || toks[i + 1].text != "include")
            continue;
        const Token &arg = toks[i + 2];
        if (arg.kind == TokenKind::String && arg.text.size() >= 2 &&
            arg.text.front() == '"') {
            out.push_back({arg.line,
                           arg.text.substr(1, arg.text.size() - 2), false,
                           ""});
            continue;
        }
        if (arg.text == "<") {
            // Angled targets lex as an identifier run: < sys / stat . h >
            std::string target;
            std::size_t j = i + 3;
            const int line = toks[i].line;
            while (j < toks.size() && toks[j].text != ">" &&
                   toks[j].line == line)
                target += toks[j++].text;
            out.push_back({line, target, true, ""});
        }
    }
    return out;
}

} // namespace

std::set<std::string>
collectExportedNames(const LexedFile &file)
{
    std::set<std::string> names;
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        // class / struct / union / enum [class] Name
        if (t == "class" || t == "struct" || t == "union" || t == "enum") {
            std::size_t j = i + 1;
            if (t == "enum" && j < toks.size() &&
                (toks[j].text == "class" || toks[j].text == "struct"))
                ++j;
            j = skipAttributes(toks, j);
            if (j < toks.size() && toks[j].kind == TokenKind::Identifier &&
                !isLintKeyword(toks[j].text))
                names.insert(toks[j].text);
            continue;
        }
        // #define NAME
        if (t == "#" && i + 2 < toks.size() &&
            toks[i + 1].text == "define" &&
            toks[i + 2].kind == TokenKind::Identifier) {
            names.insert(toks[i + 2].text);
            continue;
        }
        // using Alias = ...;  /  using ns::name;
        if (t == "using" && i + 1 < toks.size()) {
            if (toks[i + 1].text == "namespace")
                continue;
            if (i + 2 < toks.size() &&
                toks[i + 1].kind == TokenKind::Identifier &&
                toks[i + 2].text == "=") {
                names.insert(toks[i + 1].text);
                continue;
            }
            std::string last;
            for (std::size_t j = i + 1;
                 j < toks.size() && toks[j].text != ";"; ++j) {
                if (toks[j].kind == TokenKind::Identifier)
                    last = toks[j].text;
            }
            if (!last.empty())
                names.insert(last);
            continue;
        }
        // typedef ... Name;
        if (t == "typedef") {
            std::string last;
            for (std::size_t j = i + 1;
                 j < toks.size() && toks[j].text != ";"; ++j) {
                if (toks[j].kind == TokenKind::Identifier)
                    last = toks[j].text;
            }
            if (!last.empty())
                names.insert(last);
            continue;
        }
        // Declaration-position name: a non-keyword identifier preceded
        // by a type-ish token and followed by (, =, ;, { or [.
        if (toks[i].kind == TokenKind::Identifier && !isLintKeyword(t) &&
            i > 0 && i + 1 < toks.size()) {
            const Token &prev = toks[i - 1];
            const std::string &next = toks[i + 1].text;
            const bool type_before =
                (prev.kind == TokenKind::Identifier &&
                 !isLintKeyword(prev.text)) ||
                isFundamentalType(prev.text) || prev.text == ">" ||
                prev.text == "*" || prev.text == "&";
            const bool decl_after = next == "(" || next == "=" ||
                                    next == ";" || next == "{" ||
                                    next == "[";
            if (type_before && decl_after)
                names.insert(t);
        }
    }
    return names;
}

IncludeGraph::IncludeGraph(
    const std::vector<std::string> &files,
    const std::map<std::string, const LexedFile *> &lexed)
    : files_(files)
{
    const std::set<std::string> scanSet(files.begin(), files.end());
    for (const std::string &file : files_) {
        std::vector<IncludeEdge> edges = collectIncludes(*lexed.at(file));
        for (IncludeEdge &edge : edges) {
            if (edge.angled)
                continue;
            const std::string dir = dirOf(file);
            const std::string candidates[] = {
                dir.empty() ? edge.target : dir + "/" + edge.target,
                "src/" + edge.target, edge.target};
            for (const std::string &candidate : candidates) {
                const std::string norm = normalizePath(candidate);
                if (scanSet.count(norm) > 0) {
                    edge.resolved = norm;
                    break;
                }
            }
        }
        edges_[file] = std::move(edges);
        exports_[file] = collectExportedNames(*lexed.at(file));
    }
}

const std::vector<IncludeEdge> &
IncludeGraph::edgesOf(const std::string &file) const
{
    static const std::vector<IncludeEdge> kEmpty;
    const auto it = edges_.find(file);
    return it == edges_.end() ? kEmpty : it->second;
}

const std::set<std::string> &
IncludeGraph::transitiveExports(const std::string &file) const
{
    const auto memo = transitive_.find(file);
    if (memo != transitive_.end())
        return memo->second;
    // Insert the placeholder first: a header cycle terminates on it
    // (the cycle itself is reported by the layering pass).
    auto &slot = transitive_[file];
    const auto own = exports_.find(file);
    if (own != exports_.end())
        slot.insert(own->second.begin(), own->second.end());
    for (const IncludeEdge &edge : edgesOf(file)) {
        if (edge.resolved.empty())
            continue;
        const std::set<std::string> &sub = transitiveExports(edge.resolved);
        // Re-find: the recursive call may have rehashed the map.
        transitive_[file].insert(sub.begin(), sub.end());
    }
    return transitive_[file];
}

std::vector<Diagnostic>
IncludeGraph::run(const Config &config,
                  const std::map<std::string, const LexedFile *> &lexed,
                  const std::set<std::string> &reportSet) const
{
    std::vector<Diagnostic> out;

    const bool want_layering = config.ruleEnabled("layering");
    const bool want_unused = config.ruleEnabled("unused-include");

    // --- layering: every resolved edge must respect the declared DAG.
    if (want_layering && !config.layers().empty()) {
        for (const std::string &file : files_) {
            if (reportSet.count(file) == 0 ||
                config.isAllowlisted("layering", file))
                continue;
            const std::string from = config.layerOf(file);
            if (from.empty())
                continue;
            for (const IncludeEdge &edge : edgesOf(file)) {
                if (edge.resolved.empty())
                    continue;
                const std::string to = config.layerOf(edge.resolved);
                if (to.empty() || config.layerMayInclude(from, to))
                    continue;
                const Layer &decl = config.layers().at(from);
                std::string allowed;
                for (const std::string &dep : decl.deps)
                    allowed += (allowed.empty() ? "" : ", ") + dep;
                emitDiagnostic(
                    out, *lexed.at(file), file, edge.line, "layering",
                    "include of '" + edge.target + "' (layer '" + to +
                        "') from layer '" + from +
                        "' violates the declared layer DAG (allowed: " +
                        (allowed.empty() ? "<none>" : allowed) + ")");
            }
        }
    }

    // --- layering: the file-level include graph must be acyclic.
    if (want_layering) {
        // Iterative DFS in sorted file order; a back edge closes a
        // cycle. Each distinct cycle (as a node set) reports once, on
        // the back edge's include line.
        std::set<std::string> done;
        std::set<std::set<std::string>> reported;
        for (const std::string &start : files_) {
            if (done.count(start) > 0)
                continue;
            std::vector<std::pair<std::string, std::size_t>> stack;
            std::vector<std::string> path;
            std::set<std::string> on_path;
            stack.emplace_back(start, 0);
            path.push_back(start);
            on_path.insert(start);
            while (!stack.empty()) {
                auto &[node, next] = stack.back();
                const auto &edges = edgesOf(node);
                if (next >= edges.size()) {
                    done.insert(node);
                    on_path.erase(node);
                    path.pop_back();
                    stack.pop_back();
                    continue;
                }
                const IncludeEdge &edge = edges[next++];
                if (edge.resolved.empty())
                    continue;
                if (on_path.count(edge.resolved) > 0) {
                    // Found a cycle: path suffix from edge.resolved.
                    const auto at = std::find(path.begin(), path.end(),
                                              edge.resolved);
                    std::set<std::string> key(at, path.end());
                    bool touches = false;
                    for (const std::string &member : key)
                        touches = touches || reportSet.count(member) > 0;
                    if (reported.insert(key).second && touches) {
                        std::string chain;
                        for (auto it = at; it != path.end(); ++it)
                            chain += *it + " -> ";
                        chain += edge.resolved;
                        if (!config.isAllowlisted("layering", node))
                            emitDiagnostic(out, *lexed.at(node), node,
                                           edge.line, "layering",
                                           "include cycle: " + chain);
                    }
                    continue;
                }
                if (done.count(edge.resolved) > 0)
                    continue;
                stack.emplace_back(edge.resolved, 0);
                path.push_back(edge.resolved);
                on_path.insert(edge.resolved);
            }
        }
    }

    // --- unused-include: quoted in-tree includes none of whose
    // (transitive) exports the includer references.
    if (want_unused) {
        for (const std::string &file : files_) {
            if (reportSet.count(file) == 0 ||
                config.isAllowlisted("unused-include", file))
                continue;
            const auto &edges = edgesOf(file);
            bool any_resolved = false;
            for (const IncludeEdge &edge : edges)
                any_resolved = any_resolved || !edge.resolved.empty();
            if (!any_resolved)
                continue;
            // The includer's identifier population, computed once.
            std::set<std::string> used;
            for (const Token &tok : lexed.at(file)->tokens)
                if (tok.kind == TokenKind::Identifier)
                    used.insert(tok.text);
            for (const IncludeEdge &edge : edges) {
                if (edge.resolved.empty())
                    continue;
                // foo.cc including foo.hh is the declaration check, not
                // a dependency; always keep it.
                if (stemOf(file) == stemOf(edge.resolved))
                    continue;
                const std::set<std::string> &provided =
                    transitiveExports(edge.resolved);
                if (provided.empty())
                    continue;
                bool referenced = false;
                for (const std::string &name : provided) {
                    if (used.count(name) > 0) {
                        referenced = true;
                        break;
                    }
                }
                if (!referenced) {
                    emitDiagnostic(
                        out, *lexed.at(file), file, edge.line,
                        "unused-include",
                        "'" + edge.target + "' is included but none of "
                        "its exported names are referenced here; remove "
                        "it (bigfish-lint --fix does this mechanically)");
                }
            }
        }
    }

    return out;
}

} // namespace bigfish::lint
