/**
 * @file
 * Pass 1 of bigfish-lint v2: the repository include graph.
 *
 * Built once from the lexed token streams of every scanned file, the
 * graph backs two rules:
 *
 *  layering        — every resolved include edge must respect the layer
 *                    DAG declared in the [layer.*] config sections
 *                    (upward or sideways includes are findings), and the
 *                    file-level include graph must be acyclic (a header
 *                    cycle is a finding even inside one layer).
 *  unused-include  — IWYU-lite: a quoted include of an in-tree header
 *                    none of whose exported names (nor the names of its
 *                    transitive in-tree includes) appear in the including
 *                    file is removable. The heuristic is deliberately
 *                    conservative — transitive exports count as use, so
 *                    every finding is mechanically removable and --fix
 *                    deletes exactly these lines.
 *
 * A file's "exported names" are harvested from its tokens: class/struct/
 * enum/union names, #define names, using-alias targets, typedef names,
 * and declaration-position identifiers (a name preceded by a type-ish
 * token and followed by `(`, `=`, `;`, `{` or `[`). A header exporting
 * nothing recognizable never produces unused-include findings.
 */

#ifndef BIGFISH_LINT_GRAPH_HH
#define BIGFISH_LINT_GRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"
#include "rules.hh"

namespace bigfish::lint {

/** One `#include` directive, with its in-scan-set resolution if any. */
struct IncludeEdge
{
    int line;            ///< 1-based line of the directive.
    std::string target;  ///< Spelled target ("base/rng.hh", "vector").
    bool angled;         ///< <...> (true) vs "..." (false).
    std::string resolved; ///< Rel path of the scanned file it names, or "".
};

class IncludeGraph
{
  public:
    /**
     * Builds the graph over @p files (paths relative to the scan root,
     * sorted). Quoted targets resolve against the includer's directory,
     * then `src/<target>`, then `<target>`; only resolutions landing on
     * a scanned file become edges.
     */
    IncludeGraph(const std::vector<std::string> &files,
                 const std::map<std::string, const LexedFile *> &lexed);

    const std::vector<IncludeEdge> &edgesOf(const std::string &file) const;

    /**
     * Runs the layering and unused-include rules. Findings are limited
     * to files in @p reportSet (the --since restriction); the graph
     * itself always covers the full scan set so cross-file conclusions
     * stay correct under a partial report.
     */
    std::vector<Diagnostic>
    run(const Config &config,
        const std::map<std::string, const LexedFile *> &lexed,
        const std::set<std::string> &reportSet) const;

  private:
    /** Exported names of @p file plus its transitive resolved includes. */
    const std::set<std::string> &
    transitiveExports(const std::string &file) const;

    std::vector<std::string> files_;
    std::map<std::string, std::vector<IncludeEdge>> edges_;
    std::map<std::string, std::set<std::string>> exports_;
    mutable std::map<std::string, std::set<std::string>> transitive_;
};

/** Exported-name harvest for one file (exposed for the header pass). */
std::set<std::string> collectExportedNames(const LexedFile &file);

} // namespace bigfish::lint

#endif // BIGFISH_LINT_GRAPH_HH
