/**
 * @file
 * bigfish-lint: project-specific static analysis for the bigger-fish
 * reproduction.
 *
 * Enforces the two load-bearing invariants of the codebase at commit
 * time instead of at runtime: bitwise-deterministic results at any
 * thread count, and Status/Result error propagation instead of aborts.
 * See tools/lint/rules.hh for the rule list and DESIGN.md for the
 * rationale.
 *
 * Usage:
 *   bigfish-lint [options] <file-or-directory>...
 *
 * Options:
 *   --config=FILE    Load rule toggles + allowlists (TOML subset).
 *   --root=DIR       Paths in diagnostics/allowlists are relative to
 *                    DIR (default: current directory).
 *   --json           Machine-readable output on stdout.
 *   --enable=RULE    Force-enable one rule (overrides config).
 *   --disable=RULE   Force-disable one rule (overrides config).
 *   --list-rules     Print the rule names and exit.
 *
 * Exit status: 0 clean, 1 findings, 2 usage/config/IO error.
 *
 * Suppressions: `// bigfish-lint: allow(rule-name)` on the offending
 * line or the line directly above silences that rule for that line;
 * `allow(all)` silences every rule.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"
#include "rules.hh"

namespace fs = std::filesystem;
using namespace bigfish::lint;

namespace {

bool
hasSourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h" ||
           ext == ".cxx" || ext == ".hpp";
}

bool
isHeaderExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/** @p path relative to @p root with forward slashes, for diagnostics. */
std::string
relPath(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::proximate(path, root, ec);
    if (ec || rel.empty())
        rel = path;
    return rel.generic_string();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

int
usageError(const std::string &message)
{
    std::cerr << "bigfish-lint: " << message
              << "\nusage: bigfish-lint [--config=FILE] [--root=DIR] "
                 "[--json] [--enable=RULE] [--disable=RULE] <path>...\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    fs::path root = fs::current_path();
    bool json = false;
    std::vector<fs::path> inputs;
    // Apply --enable/--disable after the config file regardless of
    // argument order: the command line always wins.
    std::vector<std::pair<std::string, bool>> overrides;
    std::string config_path;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const std::string &rule : allRuleNames())
                std::cout << rule << "\n";
            return 0;
        } else if (arg.rfind("--config=", 0) == 0) {
            config_path = arg.substr(9);
        } else if (arg.rfind("--root=", 0) == 0) {
            root = fs::path(arg.substr(7));
        } else if (arg.rfind("--enable=", 0) == 0) {
            overrides.emplace_back(arg.substr(9), true);
        } else if (arg.rfind("--disable=", 0) == 0) {
            overrides.emplace_back(arg.substr(10), false);
        } else if (arg.rfind("--", 0) == 0) {
            return usageError("unknown option '" + arg + "'");
        } else {
            inputs.emplace_back(arg);
        }
    }
    if (inputs.empty())
        return usageError("no files or directories to scan");

    if (!config_path.empty()) {
        std::ifstream in(config_path);
        if (!in)
            return usageError("cannot open config '" + config_path + "'");
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string error = config.parse(buffer.str());
        if (!error.empty())
            return usageError("config " + config_path + ": " + error);
    }
    for (const auto &[rule, on] : overrides) {
        if (!config.setRuleEnabled(rule, on))
            return usageError("unknown rule '" + rule + "'");
    }

    // Expand directories into a deterministic, sorted file list.
    std::vector<fs::path> files;
    for (const fs::path &input : inputs) {
        std::error_code ec;
        if (fs::is_directory(input, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(input, ec)) {
                if (entry.is_regular_file() &&
                    hasSourceExtension(entry.path()))
                    files.push_back(entry.path());
            }
        } else if (fs::is_regular_file(input, ec)) {
            files.push_back(input);
        } else {
            return usageError("no such file or directory: '" +
                              input.string() + "'");
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: lex everything and harvest Status/Result returner names
    // so call-site checks work across translation units.
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    std::set<std::string> returners;
    for (const fs::path &path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "bigfish-lint: cannot read " << path << "\n";
            return 2;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        lexed.push_back(lex(buffer.str()));
        const auto names = collectStatusReturners(lexed.back());
        returners.insert(names.begin(), names.end());
    }

    // Pass 2: run the rules.
    std::vector<Diagnostic> diagnostics;
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string rel = relPath(files[i], root);
        auto diags = runRules(rel, lexed[i], isHeaderExtension(files[i]),
                              config, returners);
        diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
    }
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    // One line can trip the same rule twice (e.g. `.begin()` and
    // `.end()` in one loop header); report it once.
    diagnostics.erase(
        std::unique(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic &a, const Diagnostic &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.rule == b.rule;
                    }),
        diagnostics.end());

    if (json) {
        std::cout << "{\n  \"files_scanned\": " << files.size()
                  << ",\n  \"count\": " << diagnostics.size()
                  << ",\n  \"diagnostics\": [";
        for (std::size_t i = 0; i < diagnostics.size(); ++i) {
            const Diagnostic &d = diagnostics[i];
            std::cout << (i == 0 ? "" : ",") << "\n    {\"file\": \""
                      << jsonEscape(d.file) << "\", \"line\": " << d.line
                      << ", \"rule\": \"" << jsonEscape(d.rule)
                      << "\", \"message\": \"" << jsonEscape(d.message)
                      << "\"}";
        }
        std::cout << (diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
    } else {
        for (const Diagnostic &d : diagnostics)
            std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                      << d.message << "\n";
        std::cerr << "bigfish-lint: " << diagnostics.size()
                  << " finding(s) in " << files.size()
                  << " file(s) scanned\n";
    }
    return diagnostics.empty() ? 0 : 1;
}
