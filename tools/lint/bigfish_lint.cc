/**
 * @file
 * bigfish-lint: project-specific static analysis for the bigger-fish
 * reproduction.
 *
 * Enforces the load-bearing invariants of the codebase at commit time
 * instead of at runtime: bitwise-deterministic results at any thread
 * count, Status/Result error propagation instead of aborts, and (v2)
 * the architectural layer DAG, cross-TU error flow, and the parallel-
 * body concurrency contract. See tools/lint/rules.hh, graph.hh,
 * index.hh and concurrency.hh for the rule list and DESIGN.md §7/§11
 * for the rationale.
 *
 * Usage:
 *   bigfish-lint [options] <file-or-directory>...
 *
 * Options:
 *   --config=FILE    Load rule toggles + allowlists + layer DAG +
 *                    report options (TOML subset).
 *   --root=DIR       Paths in diagnostics/allowlists are relative to
 *                    DIR (default: current directory).
 *   --json           Machine-readable output on stdout.
 *   --sarif=FILE     Also write a SARIF 2.1.0 report ("-" = stdout).
 *   --baseline=FILE  Baseline file (overrides the config's [report]
 *                    baseline). Baselined findings warn, not fail.
 *   --write-baseline Rewrite the baseline from the current findings
 *                    and exit 0.
 *   --since=REV      Report findings only for files changed since the
 *                    git revision REV (plus untracked files). The
 *                    cross-TU passes still scan everything, so the
 *                    reported findings are exactly the full run's
 *                    findings restricted to the changed files.
 *   --fix            Mechanically apply safe fixes (removes the
 *                    include lines unused-include reported), then
 *                    report what remains.
 *   --enable=RULE    Force-enable one rule (overrides config).
 *   --disable=RULE   Force-disable one rule (overrides config).
 *   --list-rules     Print the rule names and exit.
 *
 * Exit status: 0 clean (baselined findings allowed), 1 new findings,
 * 2 usage/config/IO error.
 *
 * Suppressions: `// bigfish-lint: allow(rule-name)` on the offending
 * line or the line directly above silences that rule for that line;
 * `allow(all)` silences every rule.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "concurrency.hh"
#include "config.hh"
#include "graph.hh"
#include "index.hh"
#include "lexer.hh"
#include "report.hh"
#include "rules.hh"

namespace fs = std::filesystem;
using namespace bigfish::lint;

namespace {

bool
hasSourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h" ||
           ext == ".cxx" || ext == ".hpp";
}

bool
isHeaderExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/** @p path relative to @p root with forward slashes, for diagnostics. */
std::string
relPath(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::proximate(path, root, ec);
    if (ec || rel.empty())
        rel = path;
    return rel.generic_string();
}

int
usageError(const std::string &message)
{
    std::cerr << "bigfish-lint: " << message
              << "\nusage: bigfish-lint [--config=FILE] [--root=DIR] "
                 "[--json] [--sarif=FILE] [--baseline=FILE] "
                 "[--write-baseline] [--since=REV] [--fix] "
                 "[--enable=RULE] [--disable=RULE] <path>...\n";
    return 2;
}

/**
 * Files changed since @p rev (git diff --name-only) plus untracked
 * files, as root-relative paths. Returns false on git failure with
 * @p error set.
 */
bool
changedFilesSince(const fs::path &root, const std::string &rev,
                  std::set<std::string> &out, std::string &error)
{
    const auto runGit = [&](const std::string &args) -> bool {
        const std::string cmd = "git -C '" + root.string() + "' " + args +
                                " 2>/dev/null";
        FILE *pipe = popen(cmd.c_str(), "r");
        if (pipe == nullptr) {
            error = "cannot run git";
            return false;
        }
        std::string text;
        char buffer[4096];
        std::size_t got;
        while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
            text.append(buffer, got);
        if (pclose(pipe) != 0) {
            error = "git " + args + " failed (is '" + rev +
                    "' a valid revision in " + root.string() + "?)";
            return false;
        }
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
            while (!line.empty() &&
                   (line.back() == '\r' || line.back() == '\n'))
                line.pop_back();
            if (!line.empty())
                out.insert(line);
        }
        return true;
    };
    return runGit("diff --name-only " + rev) &&
           runGit("ls-files --others --exclude-standard");
}

/**
 * Removes the 1-based @p lines from @p path. Returns "" or an error.
 * Plain rewrite (no temp file): this is an interactive host tool and
 * the file is small.
 */
std::string
removeLines(const fs::path &path, const std::set<int> &lines)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot read " + path.string();
    std::vector<std::string> kept;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (lines.count(lineno) == 0)
            kept.push_back(line);
    }
    in.close();
    std::ofstream outFile(path, std::ios::binary | std::ios::trunc);
    if (!outFile)
        return "cannot write " + path.string();
    for (const std::string &keep : kept)
        outFile << keep << "\n";
    return outFile ? "" : "short write to " + path.string();
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    fs::path root = fs::current_path();
    bool json = false;
    bool write_baseline = false;
    bool fix = false;
    std::string sarif_path;
    std::string baseline_flag;
    std::string since_rev;
    std::vector<fs::path> inputs;
    // Apply --enable/--disable after the config file regardless of
    // argument order: the command line always wins.
    std::vector<std::pair<std::string, bool>> overrides;
    std::string config_path;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--write-baseline") {
            write_baseline = true;
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--list-rules") {
            for (const std::string &rule : allRuleNames())
                std::cout << rule << "\n";
            return 0;
        } else if (arg.rfind("--config=", 0) == 0) {
            config_path = arg.substr(9);
        } else if (arg.rfind("--root=", 0) == 0) {
            root = fs::path(arg.substr(7));
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarif_path = arg.substr(8);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_flag = arg.substr(11);
        } else if (arg.rfind("--since=", 0) == 0) {
            since_rev = arg.substr(8);
        } else if (arg.rfind("--enable=", 0) == 0) {
            overrides.emplace_back(arg.substr(9), true);
        } else if (arg.rfind("--disable=", 0) == 0) {
            overrides.emplace_back(arg.substr(10), false);
        } else if (arg.rfind("--", 0) == 0) {
            return usageError("unknown option '" + arg + "'");
        } else {
            inputs.emplace_back(arg);
        }
    }
    if (inputs.empty())
        return usageError("no files or directories to scan");

    if (!config_path.empty()) {
        std::ifstream in(config_path);
        if (!in)
            return usageError("cannot open config '" + config_path + "'");
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string error = config.parse(buffer.str());
        if (!error.empty())
            return usageError("config " + config_path + ": " + error);
    }
    for (const auto &[rule, on] : overrides) {
        if (!config.setRuleEnabled(rule, on))
            return usageError("unknown rule '" + rule + "'");
    }

    // Expand directories into a deterministic, sorted file list.
    std::vector<fs::path> files;
    for (const fs::path &input : inputs) {
        std::error_code ec;
        if (fs::is_directory(input, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(input, ec)) {
                if (entry.is_regular_file() &&
                    hasSourceExtension(entry.path()))
                    files.push_back(entry.path());
            }
        } else if (fs::is_regular_file(input, ec)) {
            files.push_back(input);
        } else {
            return usageError("no such file or directory: '" +
                              input.string() + "'");
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 0: lex everything once. Every later pass shares the token
    // streams; the cross-TU passes always see the whole scan set even
    // under --since.
    std::vector<LexedFile> lexed_storage;
    lexed_storage.reserve(files.size());
    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path &path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "bigfish-lint: cannot read " << path << "\n";
            return 2;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        lexed_storage.push_back(lex(buffer.str()));
        rels.push_back(relPath(path, root));
    }
    std::map<std::string, const LexedFile *> lexed;
    std::map<std::string, fs::path> absOf;
    for (std::size_t i = 0; i < files.size(); ++i) {
        lexed[rels[i]] = &lexed_storage[i];
        absOf[rels[i]] = files[i];
    }

    // The report set: every scanned file, or (--since) only the
    // changed ones. The scan set never shrinks — symbol index and
    // include graph need it whole for cross-TU correctness.
    std::set<std::string> reportSet(rels.begin(), rels.end());
    if (!since_rev.empty()) {
        std::set<std::string> changed;
        std::string error;
        if (!changedFilesSince(root, since_rev, changed, error))
            return usageError("--since: " + error);
        std::set<std::string> restricted;
        for (const std::string &rel : rels)
            if (changed.count(rel) > 0)
                restricted.insert(rel);
        std::cerr << "bigfish-lint: --since=" << since_rev << ": "
                  << restricted.size() << " of " << rels.size()
                  << " scanned file(s) changed\n";
        reportSet = std::move(restricted);
    }

    // Pass 1: repository include graph (layering, cycles, unused
    // includes). Pass 2: cross-TU symbol index (error flow).
    const IncludeGraph graph(rels, lexed);
    const SymbolIndex index = buildSymbolIndex(lexed);

    std::vector<Diagnostic> diagnostics =
        graph.run(config, lexed, reportSet);
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &rel = rels[i];
        if (reportSet.count(rel) == 0)
            continue;
        const LexedFile &file = lexed_storage[i];
        auto diags = runRules(rel, file, isHeaderExtension(files[i]),
                              config, index.statusReturners);
        diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
        diags = runErrorFlowRules(rel, file, config, index);
        diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
        diags = runConcurrencyRules(rel, file, config);
        diagnostics.insert(diagnostics.end(), diags.begin(), diags.end());
    }
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    // One line can trip the same rule twice (e.g. `.begin()` and
    // `.end()` in one loop header); report it once.
    diagnostics.erase(
        std::unique(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic &a, const Diagnostic &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.rule == b.rule;
                    }),
        diagnostics.end());

    // --fix: remove the include lines unused-include reported, then
    // drop those findings from the report.
    if (fix) {
        std::map<std::string, std::set<int>> removals;
        for (const Diagnostic &d : diagnostics)
            if (d.rule == "unused-include")
                removals[d.file].insert(d.line);
        std::size_t removed = 0;
        for (const auto &[file, lines] : removals) {
            const std::string error = removeLines(absOf.at(file), lines);
            if (!error.empty()) {
                std::cerr << "bigfish-lint: --fix: " << error << "\n";
                return 2;
            }
            removed += lines.size();
        }
        if (!removals.empty())
            std::cerr << "bigfish-lint: --fix removed " << removed
                      << " unused include(s) in " << removals.size()
                      << " file(s)\n";
        diagnostics.erase(
            std::remove_if(diagnostics.begin(), diagnostics.end(),
                           [](const Diagnostic &d) {
                               return d.rule == "unused-include";
                           }),
            diagnostics.end());
    }

    // Baseline: the config's [report] path unless --baseline overrides.
    Baseline baseline;
    std::string baseline_path = baseline_flag;
    if (baseline_path.empty() && !config.baselinePath().empty())
        baseline_path = (root / config.baselinePath()).string();
    if (write_baseline) {
        if (baseline_path.empty())
            return usageError(
                "--write-baseline needs --baseline or a [report] "
                "baseline in the config");
        const std::string error =
            writeBaselineFile(baseline_path, diagnostics);
        if (!error.empty())
            return usageError(error);
        std::cerr << "bigfish-lint: wrote " << diagnostics.size()
                  << " finding(s) to baseline " << baseline_path << "\n";
        return 0;
    }
    if (!baseline_path.empty()) {
        const std::string error = loadBaseline(baseline_path, baseline);
        if (!error.empty())
            return usageError(error);
    }
    std::vector<Diagnostic> fresh, baselined;
    std::size_t stale = 0;
    partitionAgainstBaseline(diagnostics, baseline, fresh, baselined,
                             stale);
    if (stale > 0)
        std::cerr << "bigfish-lint: " << stale
                  << " stale baseline entr(ies) match no current finding; "
                     "rerun with --write-baseline to shrink the file\n";

    if (!sarif_path.empty()) {
        const std::string sarif = renderSarif(fresh, baselined);
        if (sarif_path == "-") {
            std::cout << sarif;
        } else {
            std::ofstream out(sarif_path, std::ios::binary);
            if (!out) {
                std::cerr << "bigfish-lint: cannot write SARIF to "
                          << sarif_path << "\n";
                return 2;
            }
            out << sarif;
        }
    }
    if (json) {
        std::cout << renderJson(fresh, baselined, files.size());
    } else if (sarif_path != "-") {
        std::cout << renderText(fresh, baselined, files.size());
    }
    return fresh.empty() ? 0 : 1;
}
