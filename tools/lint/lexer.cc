#include "lexer.hh"

#include <cctype>
#include <cstddef>

namespace bigfish::lint {

namespace {

/** Longest-match puncutator set; order within a length is irrelevant. */
const char *const kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char *const kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                               ">=", "==", "!=", "&&", "||", "+=", "-=",
                               "*=", "/=", "%=", "&=", "|=", "^=", "##"};

bool
startsWith(const std::string &s, std::size_t pos, const char *prefix)
{
    for (std::size_t i = 0; prefix[i] != '\0'; ++i) {
        if (pos + i >= s.size() || s[pos + i] != prefix[i])
            return false;
    }
    return true;
}

/**
 * Records the rules named by a `bigfish-lint: allow(a, b)` marker in
 * @p comment, covering @p line and the line after it.
 */
void
recordSuppressions(const std::string &comment, int line, LexedFile &out)
{
    const std::string marker = "bigfish-lint:";
    const std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::size_t pos = comment.find("allow(", at);
    if (pos == std::string::npos)
        return;
    pos += 6;
    const std::size_t end = comment.find(')', pos);
    if (end == std::string::npos)
        return;
    std::string name;
    for (std::size_t i = pos; i <= end; ++i) {
        const char c = i < end ? comment[i] : ',';
        if (c == ',' || c == ' ' || c == '\t') {
            if (!name.empty()) {
                out.suppressions[line].insert(name);
                out.suppressions[line + 1].insert(name);
                name.clear();
            }
        } else {
            name.push_back(c);
        }
    }
}

} // namespace

LexedFile
lex(const std::string &source)
{
    LexedFile out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    const auto advanceLines = [&](const std::string &text) {
        for (char c : text)
            if (c == '\n')
                ++line;
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment: strip to end of line, mining suppressions.
        if (c == '/' && startsWith(source, i, "//")) {
            std::size_t end = i;
            while (end < n && source[end] != '\n')
                ++end;
            recordSuppressions(source.substr(i, end - i), line, out);
            i = end;
            continue;
        }
        // Block comment: strip to the closing marker.
        if (c == '/' && startsWith(source, i, "/*")) {
            std::size_t end = source.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            const std::string body = source.substr(i, end - i);
            recordSuppressions(body, line, out);
            advanceLines(body);
            i = end;
            continue;
        }
        // Raw string literal: R"delim( ... )delim". Collapsed to an
        // opaque token: raw strings never carry include targets.
        if (c == 'R' && startsWith(source, i, "R\"")) {
            std::size_t d = i + 2;
            while (d < n && source[d] != '(')
                ++d;
            const std::string delim = source.substr(i + 2, d - (i + 2));
            const std::string close = ")" + delim + "\"";
            std::size_t end = source.find(close, d);
            if (end == std::string::npos)
                end = n;
            else
                end += close.size();
            const std::string body = source.substr(i, end - i);
            out.tokens.push_back({TokenKind::String, "\"\"", line});
            advanceLines(body);
            i = end;
            continue;
        }
        // String / char literal with escape handling. The token keeps
        // the literal text, quotes included, so the include-graph pass
        // can read `#include "foo.hh"` targets; the quotes guarantee it
        // can never collide with an identifier in any rule comparison.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int start_line = line;
            std::size_t end = i + 1;
            while (end < n && source[end] != quote) {
                if (source[end] == '\\' && end + 1 < n)
                    ++end;
                if (source[end] == '\n')
                    ++line;
                ++end;
            }
            const std::size_t stop = end < n ? end + 1 : n;
            out.tokens.push_back(
                {TokenKind::String, source.substr(i, stop - i), start_line});
            i = stop;
            continue;
        }
        // Identifier or keyword.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t end = i;
            while (end < n &&
                   (std::isalnum(static_cast<unsigned char>(source[end])) ||
                    source[end] == '_'))
                ++end;
            out.tokens.push_back(
                {TokenKind::Identifier, source.substr(i, end - i), line});
            i = end;
            continue;
        }
        // Number (loose: the rules never read numeric values).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t end = i;
            while (end < n &&
                   (std::isalnum(static_cast<unsigned char>(source[end])) ||
                    source[end] == '.' || source[end] == '\''))
                ++end;
            out.tokens.push_back(
                {TokenKind::Number, source.substr(i, end - i), line});
            i = end;
            continue;
        }
        // Punctuation, longest match first.
        bool matched = false;
        for (const char *p : kPunct3) {
            if (startsWith(source, i, p)) {
                out.tokens.push_back({TokenKind::Punct, p, line});
                i += 3;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char *p : kPunct2) {
            if (startsWith(source, i, p)) {
                out.tokens.push_back({TokenKind::Punct, p, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.tokens.push_back({TokenKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

bool
isSuppressed(const LexedFile &file, int line, const std::string &rule)
{
    const auto it = file.suppressions.find(line);
    if (it == file.suppressions.end())
        return false;
    return it->second.count(rule) > 0 || it->second.count("all") > 0;
}

} // namespace bigfish::lint
