#include "config.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace bigfish::lint {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strips a trailing # comment that is not inside a string literal. */
std::string
stripComment(const std::string &line)
{
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"')
            in_string = !in_string;
        else if (line[i] == '#' && !in_string)
            return line.substr(0, i);
    }
    return line;
}

/**
 * Parses a ["a", "b"] array of strings into @p out. Returns an empty
 * string on success, else a parse error.
 */
std::string
parseStringArray(const std::string &value, std::vector<std::string> &out)
{
    if (value.size() < 2 || value.front() != '[' || value.back() != ']')
        return "value must be a [\"...\"] array";
    const std::string body = value.substr(1, value.size() - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        const std::size_t open = body.find('"', pos);
        if (open == std::string::npos) {
            if (!trim(body.substr(pos)).empty() &&
                trim(body.substr(pos)) != ",")
                return "malformed string array";
            break;
        }
        const std::size_t close = body.find('"', open + 1);
        if (close == std::string::npos)
            return "unterminated string in array";
        out.push_back(body.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return "";
}

} // namespace

std::vector<std::string>
allRuleNames()
{
    return {"nondeterminism",     "unordered-iteration",
            "discarded-status",   "raw-thread",
            "allocating-algorithm", "parallel-float-accum",
            "intrinsics-header",
            "layering",           "unused-include",
            "status-swallowed",   "ordie-outside-binary",
            "parallel-capture-race", "parallel-mutex",
            "parallel-shared-rng",  "stage-timing"};
}

Config::Config()
{
    for (const std::string &rule : allRuleNames())
        enabled_[rule] = true;
}

std::string
Config::parse(const std::string &text)
{
    std::string section;
    std::size_t start = 0;
    int lineno = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string raw = text.substr(start, end - start);
        start = end + 1;
        ++lineno;

        const std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;
        const std::string where = "line " + std::to_string(lineno) + ": ";

        if (line.front() == '[') {
            if (line.back() != ']')
                return where + "unterminated section header";
            section = trim(line.substr(1, line.size() - 2));
            if (section.rfind("layer.", 0) == 0) {
                const std::string name = section.substr(6);
                if (name.empty())
                    return where + "layer section needs a name";
                layers_[name]; // declare even if the body is empty
            }
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return where + "expected 'key = value'";
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        if (section == "rules") {
            bool on;
            if (value == "true")
                on = true;
            else if (value == "false")
                on = false;
            else
                return where + "rule value must be true or false";
            if (!setRuleEnabled(key, on))
                return where + "unknown rule '" + key + "'";
            continue;
        }
        if (section.rfind("allow.", 0) == 0) {
            const std::string rule = section.substr(6);
            const auto names = allRuleNames();
            if (std::find(names.begin(), names.end(), rule) == names.end())
                return where + "unknown rule in section '" + section + "'";
            if (key != "paths")
                return where + "allow sections take only 'paths'";
            std::vector<std::string> paths;
            const std::string error = parseStringArray(value, paths);
            if (!error.empty())
                return where + error;
            for (const std::string &path : paths)
                addAllowlist(rule, path);
            continue;
        }
        if (section.rfind("layer.", 0) == 0) {
            Layer &layer = layers_[section.substr(6)];
            std::vector<std::string> *field = nullptr;
            if (key == "paths")
                field = &layer.paths;
            else if (key == "deps")
                field = &layer.deps;
            else
                return where + "layer sections take 'paths' and 'deps'";
            const std::string error = parseStringArray(value, *field);
            if (!error.empty())
                return where + error;
            continue;
        }
        if (section == "report") {
            if (key != "baseline")
                return where + "report section takes only 'baseline'";
            if (value.size() < 2 || value.front() != '"' ||
                value.back() != '"')
                return where + "baseline must be a quoted path";
            baseline_ = value.substr(1, value.size() - 2);
            continue;
        }
        return where + "unknown section '" + section + "'";
    }

    // The declared layer graph must itself be a DAG over known names:
    // an upward include can only be *detected* against a well-formed
    // declaration.
    for (const auto &[name, layer] : layers_) {
        for (const std::string &dep : layer.deps) {
            if (layers_.count(dep) == 0)
                return "layer '" + name + "' depends on undeclared layer '" +
                       dep + "'";
        }
    }
    // Depth-first cycle check; the graph is tiny (one node per layer).
    std::set<std::string> done;
    for (const auto &[name, layer] : layers_) {
        (void)layer;
        std::set<std::string> path;
        std::vector<std::string> stack = {name};
        std::vector<std::size_t> next = {0};
        path.insert(name);
        while (!stack.empty()) {
            const Layer &top = layers_.at(stack.back());
            if (next.back() >= top.deps.size()) {
                path.erase(stack.back());
                done.insert(stack.back());
                stack.pop_back();
                next.pop_back();
                continue;
            }
            const std::string dep = top.deps[next.back()++];
            if (path.count(dep) > 0)
                return "layer dependency cycle through '" + dep + "'";
            if (done.count(dep) == 0) {
                stack.push_back(dep);
                next.push_back(0);
                path.insert(dep);
            }
        }
    }
    return "";
}

bool
Config::setRuleEnabled(const std::string &rule, bool enabled)
{
    const auto it = enabled_.find(rule);
    if (it == enabled_.end())
        return false;
    it->second = enabled;
    return true;
}

bool
Config::ruleEnabled(const std::string &rule) const
{
    const auto it = enabled_.find(rule);
    return it != enabled_.end() && it->second;
}

bool
Config::isAllowlisted(const std::string &rule,
                      const std::string &relPath) const
{
    const auto it = allowlists_.find(rule);
    if (it == allowlists_.end())
        return false;
    for (const std::string &prefix : it->second)
        if (relPath.rfind(prefix, 0) == 0)
            return true;
    return false;
}

void
Config::addAllowlist(const std::string &rule, const std::string &prefix)
{
    allowlists_[rule].push_back(prefix);
}

std::string
Config::layerOf(const std::string &relPath) const
{
    for (const auto &[name, layer] : layers_) {
        for (const std::string &prefix : layer.paths)
            if (relPath.rfind(prefix, 0) == 0)
                return name;
    }
    return "";
}

bool
Config::layerMayInclude(const std::string &from, const std::string &to) const
{
    if (from == to)
        return true;
    const auto it = layers_.find(from);
    if (it == layers_.end())
        return false;
    const auto &deps = it->second.deps;
    return std::find(deps.begin(), deps.end(), to) != deps.end();
}

} // namespace bigfish::lint
