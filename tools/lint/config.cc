#include "config.hh"

#include <algorithm>
#include <cctype>

namespace bigfish::lint {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strips a trailing # comment that is not inside a string literal. */
std::string
stripComment(const std::string &line)
{
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"')
            in_string = !in_string;
        else if (line[i] == '#' && !in_string)
            return line.substr(0, i);
    }
    return line;
}

} // namespace

std::vector<std::string>
allRuleNames()
{
    return {"nondeterminism", "unordered-iteration", "discarded-status",
            "raw-thread", "parallel-float-accum", "intrinsics-header"};
}

Config::Config()
{
    for (const std::string &rule : allRuleNames())
        enabled_[rule] = true;
}

std::string
Config::parse(const std::string &text)
{
    std::string section;
    std::size_t start = 0;
    int lineno = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string raw = text.substr(start, end - start);
        start = end + 1;
        ++lineno;

        const std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;
        const std::string where = "line " + std::to_string(lineno) + ": ";

        if (line.front() == '[') {
            if (line.back() != ']')
                return where + "unterminated section header";
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return where + "expected 'key = value'";
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        if (section == "rules") {
            bool on;
            if (value == "true")
                on = true;
            else if (value == "false")
                on = false;
            else
                return where + "rule value must be true or false";
            if (!setRuleEnabled(key, on))
                return where + "unknown rule '" + key + "'";
            continue;
        }
        if (section.rfind("allow.", 0) == 0) {
            const std::string rule = section.substr(6);
            const auto names = allRuleNames();
            if (std::find(names.begin(), names.end(), rule) == names.end())
                return where + "unknown rule in section '" + section + "'";
            if (key != "paths")
                return where + "allow sections take only 'paths'";
            if (value.size() < 2 || value.front() != '[' ||
                value.back() != ']')
                return where + "paths must be a [\"...\"] array";
            // Parse the ["a", "b"] array body.
            std::string body = value.substr(1, value.size() - 2);
            std::size_t pos = 0;
            while (pos < body.size()) {
                const std::size_t open = body.find('"', pos);
                if (open == std::string::npos) {
                    if (!trim(body.substr(pos)).empty() &&
                        trim(body.substr(pos)) != ",")
                        return where + "malformed paths array";
                    break;
                }
                const std::size_t close = body.find('"', open + 1);
                if (close == std::string::npos)
                    return where + "unterminated string in paths array";
                addAllowlist(rule, body.substr(open + 1, close - open - 1));
                pos = close + 1;
            }
            continue;
        }
        return where + "unknown section '" + section + "'";
    }
    return "";
}

bool
Config::setRuleEnabled(const std::string &rule, bool enabled)
{
    const auto it = enabled_.find(rule);
    if (it == enabled_.end())
        return false;
    it->second = enabled;
    return true;
}

bool
Config::ruleEnabled(const std::string &rule) const
{
    const auto it = enabled_.find(rule);
    return it != enabled_.end() && it->second;
}

bool
Config::isAllowlisted(const std::string &rule,
                      const std::string &relPath) const
{
    const auto it = allowlists_.find(rule);
    if (it == allowlists_.end())
        return false;
    for (const std::string &prefix : it->second)
        if (relPath.rfind(prefix, 0) == 0)
            return true;
    return false;
}

void
Config::addAllowlist(const std::string &rule, const std::string &prefix)
{
    allowlists_[rule].push_back(prefix);
}

} // namespace bigfish::lint
