/**
 * @file
 * bigfish — the unified experiment CLI.
 *
 *   bigfish list                         every registered experiment
 *   bigfish describe <experiment>        schema, defaults, paper numbers
 *   bigfish run <experiment...> [flags]  run one or more experiments
 *   bigfish run --all [--smoke|--full]   run the whole suite
 *
 * Run flags: --smoke / --full scale presets, --spec=FILE (TOML or JSON;
 * an emitted artifact JSON replays bit-for-bit), --json=PATH (single
 * experiment), --json-dir=DIR (one artifact per experiment), plus any
 * --<param>=<value> the experiment's schema declares. Parameter
 * resolution order: defaults -> BF_* environment -> preset -> spec file
 * -> flags; malformed values fail with the offending source named.
 *
 * Exit status: 0 success, 1 a run failed, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/stopwatch.hh"
#include "base/thread_pool.hh"
#include "experiments.hh"

using namespace bigfish;

namespace {

/** The process environment, injected into the (env-blind) spec layer. */
std::optional<std::string>
envLookup(const std::string &name)
{
    const char *value = std::getenv(name.c_str());
    if (value == nullptr)
        return std::nullopt;
    return std::string(value);
}

int
usageError(const std::string &message)
{
    std::fprintf(stderr, "bigfish: %s\n", message.c_str());
    std::fprintf(stderr, "run `bigfish help` for usage\n");
    return 2;
}

void
printUsage()
{
    std::printf(
        "bigfish — unified experiment runner for the bigger-fish "
        "reproduction\n"
        "\n"
        "usage:\n"
        "  bigfish list                         list registered "
        "experiments\n"
        "  bigfish describe <experiment>        parameters and paper "
        "numbers\n"
        "  bigfish run <experiment...> [flags]  run experiments\n"
        "  bigfish run --all [flags]            run the whole suite\n"
        "  bigfish help\n"
        "\n"
        "run flags:\n"
        "  --smoke            tiny scale for CI smoke runs\n"
        "  --full             the paper's scale (100x100, 10 folds)\n"
        "  --spec=FILE        TOML/JSON run spec; an emitted artifact\n"
        "                     JSON replays the recorded run "
        "bit-for-bit\n"
        "  --json=PATH        write the run artifact (one experiment "
        "only)\n"
        "  --json-dir=DIR     write DIR/<experiment>.json per "
        "experiment\n"
        "  --<param>=<value>  any parameter the experiment declares\n"
        "                     (see `bigfish describe <experiment>`)\n"
        "\n"
        "Parameter resolution: defaults -> BF_* env -> preset -> spec "
        "file -> flags.\n");
}

int
cmdList(const core::ExperimentRegistry &registry)
{
    std::size_t width = 0;
    for (const auto &name : registry.names())
        width = std::max(width, name.size());
    for (const auto &[name, d] : registry.all())
        std::printf("%-*s  %s [%s]\n", static_cast<int>(width),
                    name.c_str(), d.title.c_str(),
                    d.paperReference.c_str());
    std::printf("\n%zu experiments; run one with `bigfish run <name>`.\n",
                registry.size());
    return 0;
}

int
cmdDescribe(const core::ExperimentRegistry &registry,
            const std::string &name)
{
    const auto *d = registry.find(name);
    if (d == nullptr)
        return usageError("unknown experiment \"" + name +
                          "\" (see `bigfish list`)");
    std::printf("%s — %s\n", d->name.c_str(), d->title.c_str());
    std::printf("reproduces: %s\n\n", d->paperReference.c_str());
    std::printf("parameters:\n%s", spec::helpText(d->schema).c_str());
    if (!d->smokeOverrides.empty()) {
        std::printf("\n--smoke additionally sets:");
        for (const auto &[key, value] : d->smokeOverrides)
            std::printf(" %s=%s", key.c_str(), value.c_str());
        std::printf("\n");
    }
    if (!d->expected.empty()) {
        std::printf("\npaper-expected values:\n");
        for (const auto &e : d->expected)
            std::printf("  %-36s %.6f\n", e.name.c_str(), e.value);
    }
    return 0;
}

struct RunOptions
{
    std::vector<std::string> experiments;
    bool all = false;
    bool smoke = false;
    bool full = false;
    bool help = false;
    std::string specPath;
    std::string jsonPath;
    std::string jsonDir;
    std::vector<std::pair<std::string, std::string>> flags;
};

/** Splits "--key=value" into its parts; false for non-flag tokens. */
bool
splitFlag(const std::string &arg, std::string &key, std::string &value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
        key = arg.substr(2);
        value.clear();
    } else {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
    }
    return true;
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ioError("cannot read spec file " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

int
runOne(const core::ExperimentDescriptor &descriptor,
       const RunOptions &options, const std::string &spec_text)
{
    spec::SpecSources sources;
    sources.env = envLookup;
    if (options.smoke) {
        sources.presets = core::smokeScaleOverrides();
        sources.presets.insert(sources.presets.end(),
                               descriptor.smokeOverrides.begin(),
                               descriptor.smokeOverrides.end());
    } else if (options.full) {
        sources.presets = core::fullScaleOverrides();
    }
    sources.specText = spec_text;
    sources.specName = options.specPath;
    sources.flags = options.flags;

    auto resolved =
        spec::resolveSpec(descriptor.name, descriptor.schema, sources);
    if (!resolved.isOk()) {
        std::fprintf(stderr, "bigfish: %s\n",
                     resolved.status().message().c_str());
        return 2;
    }

    core::RunContext ctx;
    ctx.descriptor = &descriptor;
    ctx.spec = std::move(resolved).value();

    const int threads = static_cast<int>(ctx.spec.getInt("threads"));
    if (threads > 0)
        setGlobalThreads(threads);

    core::printExperimentBanner(ctx);
    Stopwatch wall;
    auto artifact = descriptor.run(ctx);
    if (!artifact.isOk()) {
        std::fprintf(stderr, "bigfish: %s failed: %s\n",
                     descriptor.name.c_str(),
                     artifact.status().message().c_str());
        return 1;
    }
    artifact.value().setWallSeconds(wall.seconds());

    std::string out_path = options.jsonPath;
    if (!options.jsonDir.empty())
        out_path = options.jsonDir + "/" + descriptor.name + ".json";
    if (!out_path.empty()) {
        const Status written = artifact.value().writeJson(out_path);
        if (!written.isOk()) {
            std::fprintf(stderr, "bigfish: %s\n",
                         written.message().c_str());
            return 1;
        }
        std::printf("report written: %s\n", out_path.c_str());
    }
    return 0;
}

int
cmdRun(const core::ExperimentRegistry &registry,
       const std::vector<std::string> &args)
{
    RunOptions options;
    for (const auto &arg : args) {
        std::string key, value;
        if (!splitFlag(arg, key, value)) {
            options.experiments.push_back(arg);
        } else if (key == "all" && value.empty()) {
            options.all = true;
        } else if (key == "smoke" && value.empty()) {
            options.smoke = true;
        } else if (key == "full" && value.empty()) {
            options.full = true;
        } else if (key == "help" && value.empty()) {
            options.help = true;
        } else if (key == "spec") {
            options.specPath = value;
        } else if (key == "json") {
            options.jsonPath = value;
        } else if (key == "json-dir") {
            options.jsonDir = value;
        } else if (key == "paper-model" && value.empty()) {
            // Convenience: the old binaries took --paper-model as a
            // bare switch; keep that spelling working.
            options.flags.emplace_back("paper-model", "true");
        } else {
            options.flags.emplace_back(key, value);
        }
    }
    if (options.smoke && options.full)
        return usageError("--smoke and --full are mutually exclusive");

    std::string spec_text;
    std::string spec_experiment;
    if (!options.specPath.empty()) {
        auto text = readFile(options.specPath);
        if (!text.isOk())
            return usageError(text.status().message());
        spec_text = std::move(text).value();
        auto parsed = spec::parseSpecText(spec_text, options.specPath);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "bigfish: %s\n",
                         parsed.status().message().c_str());
            return 2;
        }
        spec_experiment = parsed.value().experiment;
    }

    std::vector<std::string> names = options.experiments;
    if (options.all) {
        if (!names.empty())
            return usageError(
                "--all cannot be combined with experiment names");
        names = registry.names();
    } else if (names.empty() && !spec_experiment.empty()) {
        // `bigfish run --spec=artifact.json` replays the recorded
        // experiment without restating its name.
        names.push_back(spec_experiment);
    }
    if (names.empty())
        return usageError("no experiment named (see `bigfish list`, or "
                          "use --all)");
    if (options.help) {
        for (const auto &name : names) {
            const int rc = cmdDescribe(registry, name);
            if (rc != 0)
                return rc;
        }
        return 0;
    }
    if (!options.jsonPath.empty() && names.size() > 1)
        return usageError("--json=PATH only applies to a single "
                          "experiment; use --json-dir=DIR");

    for (const auto &name : names) {
        const auto *descriptor = registry.find(name);
        if (descriptor == nullptr)
            return usageError("unknown experiment \"" + name +
                              "\" (see `bigfish list`)");
        const int rc = runOne(*descriptor, options, spec_text);
        if (rc != 0)
            return rc;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    core::ExperimentRegistry registry;
    bench::registerAllExperiments(registry);

    if (argc < 2) {
        printUsage();
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "help" || command == "--help" || command == "-h") {
        printUsage();
        return 0;
    }
    if (command == "list") {
        if (!args.empty())
            return usageError("`bigfish list` takes no arguments");
        return cmdList(registry);
    }
    if (command == "describe") {
        if (args.size() != 1)
            return usageError("usage: bigfish describe <experiment>");
        return cmdDescribe(registry, args[0]);
    }
    if (command == "run")
        return cmdRun(registry, args);
    return usageError("unknown command \"" + command +
                      "\" (expected list, describe, run or help)");
}
