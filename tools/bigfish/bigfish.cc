/**
 * @file
 * bigfish — the unified experiment CLI.
 *
 *   bigfish list                         every registered experiment
 *   bigfish describe <experiment>        schema, defaults, paper numbers
 *   bigfish run <experiment...> [flags]  run one or more experiments
 *   bigfish run --all [--smoke|--full]   run the whole suite
 *
 * Run flags: --smoke / --full scale presets, --spec=FILE (TOML or JSON;
 * an emitted artifact JSON replays bit-for-bit), --json=PATH (single
 * experiment), --json-dir=DIR (one artifact per experiment), plus any
 * --<param>=<value> the experiment's schema declares. Parameter
 * resolution order: defaults -> BF_* environment -> preset -> spec file
 * -> flags; malformed values fail with the offending source named.
 *
 * Resilience flags (core/supervisor.hh): --resume=DIR checkpoints
 * collection progress and skips completed work on rerun, --isolate runs
 * each experiment as a subprocess so a crash cannot take down --all,
 * --keep-going continues past failures, --timeout=SECS bounds each
 * experiment (enforced under --isolate), --retries=N retries transient
 * failures with deterministic seeded backoff, --manifest=PATH writes the
 * suite manifest (defaults to <json-dir>/suite-manifest.json). SIGINT /
 * SIGTERM stop the suite gracefully: the partial manifest is flushed and
 * the exit status is 130.
 *
 * Exit status: 0 success, 1 a run failed, 2 usage error, 130 interrupted.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/atomic_file.hh"
#include "base/stopwatch.hh"
#include "base/thread_pool.hh"
#include "core/supervisor.hh"
#include "experiments.hh"

using namespace bigfish;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

/**
 * First SIGINT/SIGTERM requests a graceful stop: the supervisor finishes
 * (or kills, under --isolate) the current experiment, marks the rest
 * skipped, flushes the manifest, and exits 130. A second signal gets the
 * default action — die immediately.
 */
void
handleInterrupt(int sig)
{
    g_interrupted = 1;
    std::signal(sig, SIG_DFL);
}

/** The process environment, injected into the (env-blind) spec layer. */
std::optional<std::string>
envLookup(const std::string &name)
{
    const char *value = std::getenv(name.c_str());
    if (value == nullptr)
        return std::nullopt;
    return std::string(value);
}

int
usageError(const std::string &message)
{
    std::fprintf(stderr, "bigfish: %s\n", message.c_str());
    std::fprintf(stderr, "run `bigfish help` for usage\n");
    return 2;
}

void
printUsage()
{
    std::printf(
        "bigfish — unified experiment runner for the bigger-fish "
        "reproduction\n"
        "\n"
        "usage:\n"
        "  bigfish list                         list registered "
        "experiments\n"
        "  bigfish describe <experiment>        parameters and paper "
        "numbers\n"
        "  bigfish run <experiment...> [flags]  run experiments\n"
        "  bigfish run --all [flags]            run the whole suite\n"
        "  bigfish help\n"
        "\n"
        "run flags:\n"
        "  --smoke            tiny scale for CI smoke runs\n"
        "  --full             the paper's scale (100x100, 10 folds)\n"
        "  --spec=FILE        TOML/JSON run spec; an emitted artifact\n"
        "                     JSON replays the recorded run "
        "bit-for-bit\n"
        "  --json=PATH        write the run artifact (one experiment "
        "only)\n"
        "  --json-dir=DIR     write DIR/<experiment>.json per "
        "experiment\n"
        "  --explain          print the stage graph after each run: one\n"
        "                     row per stage with its input fingerprint,\n"
        "                     cache provenance (hit/miss/stored/skipped)\n"
        "                     and CPU/wall timing\n"
        "  --<param>=<value>  any parameter the experiment declares\n"
        "                     (see `bigfish describe <experiment>`)\n"
        "\n"
        "resilience flags:\n"
        "  --resume=DIR       checkpoint collection progress in DIR and\n"
        "                     skip already-completed work on rerun\n"
        "  --cache-dir=DIR    content-addressed stage cache in DIR:\n"
        "                     featurized datasets, trained fold models\n"
        "                     and fold scores. A rerun reuses every "
        "stage\n"
        "                     whose input fingerprint is unchanged "
        "(e.g.\n"
        "                     an eval-only change skips collection AND\n"
        "                     training), bit-identically\n"
        "  --isolate          run each experiment as a subprocess; a\n"
        "                     crash is contained, not fatal to --all\n"
        "  --keep-going       keep running later experiments after a "
        "failure\n"
        "  --timeout=SECS     per-experiment deadline (enforced with "
        "--isolate)\n"
        "  --retries=N        retry transient failures up to N times\n"
        "                     (deterministic seeded backoff)\n"
        "  --manifest=PATH    suite manifest JSON (default:\n"
        "                     <json-dir>/suite-manifest.json)\n"
        "\n"
        "Parameter resolution: defaults -> BF_* env -> preset -> spec "
        "file -> flags.\n"
        "Exit status: 0 success, 1 a run failed, 2 usage error, 130 "
        "interrupted.\n");
}

int
cmdList(const core::ExperimentRegistry &registry)
{
    std::size_t width = 0;
    for (const auto &name : registry.names())
        width = std::max(width, name.size());
    for (const auto &[name, d] : registry.all())
        std::printf("%-*s  %s [%s]\n", static_cast<int>(width),
                    name.c_str(), d.title.c_str(),
                    d.paperReference.c_str());
    std::printf("\n%zu experiments; run one with `bigfish run <name>`.\n",
                registry.size());
    return 0;
}

int
cmdDescribe(const core::ExperimentRegistry &registry,
            const std::string &name)
{
    const auto *d = registry.find(name);
    if (d == nullptr)
        return usageError("unknown experiment \"" + name +
                          "\" (see `bigfish list`)");
    std::printf("%s — %s\n", d->name.c_str(), d->title.c_str());
    std::printf("reproduces: %s\n\n", d->paperReference.c_str());
    std::printf("parameters:\n%s", spec::helpText(d->schema).c_str());
    if (!d->smokeOverrides.empty()) {
        std::printf("\n--smoke additionally sets:");
        for (const auto &[key, value] : d->smokeOverrides)
            std::printf(" %s=%s", key.c_str(), value.c_str());
        std::printf("\n");
    }
    if (!d->expected.empty()) {
        std::printf("\npaper-expected values:\n");
        for (const auto &e : d->expected)
            std::printf("  %-36s %.6f\n", e.name.c_str(), e.value);
    }
    return 0;
}

struct RunOptions
{
    std::vector<std::string> experiments;
    bool all = false;
    bool smoke = false;
    bool full = false;
    bool help = false;
    bool isolate = false;
    bool keepGoing = false;
    bool explain = false;
    double timeoutSeconds = 0.0;
    int retries = 0;
    std::string specPath;
    std::string jsonPath;
    std::string jsonDir;
    std::string resumeDir;
    std::string cacheDir;
    std::string manifestPath;
    std::vector<std::pair<std::string, std::string>> flags;
};

/** Splits "--key=value" into its parts; false for non-flag tokens. */
bool
splitFlag(const std::string &arg, std::string &key, std::string &value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
        key = arg.substr(2);
        value.clear();
    } else {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
    }
    return true;
}

bool
parsePositiveDouble(const std::string &text, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0)
        return false;
    *out = v;
    return true;
}

bool
parseNonNegativeInt(const std::string &text, int *out)
{
    char *end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v < 0 || v > 1000)
        return false;
    *out = static_cast<int>(v);
    return true;
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ioError("cannot read spec file " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** This binary's own path, for spawning --isolate children. */
std::string
selfExecutable(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0 != nullptr && argv0[0] != '\0' ? argv0 : "bigfish";
}

/** One experiment with its spec fully resolved and output path fixed. */
struct PreparedRun
{
    const core::ExperimentDescriptor *descriptor = nullptr;
    spec::RunSpec spec;
    std::string artifactPath;
};

int
cmdRun(const core::ExperimentRegistry &registry,
       const std::vector<std::string> &args, const char *argv0)
{
    RunOptions options;
    for (const auto &arg : args) {
        std::string key, value;
        if (!splitFlag(arg, key, value)) {
            options.experiments.push_back(arg);
        } else if (key == "all" && value.empty()) {
            options.all = true;
        } else if (key == "smoke" && value.empty()) {
            options.smoke = true;
        } else if (key == "full" && value.empty()) {
            options.full = true;
        } else if (key == "help" && value.empty()) {
            options.help = true;
        } else if (key == "spec") {
            options.specPath = value;
        } else if (key == "json") {
            options.jsonPath = value;
        } else if (key == "json-dir") {
            options.jsonDir = value;
        } else if (key == "resume") {
            // Kept both as a CLI option (directory creation, child
            // forwarding) and as a spec parameter (the pipeline reads
            // it from the resolved scale).
            options.resumeDir = value;
            options.flags.emplace_back("resume", value);
        } else if (key == "cache-dir") {
            // Same dual treatment as --resume.
            options.cacheDir = value;
            options.flags.emplace_back("cache-dir", value);
        } else if (key == "explain" && value.empty()) {
            options.explain = true;
        } else if (key == "isolate" && value.empty()) {
            options.isolate = true;
        } else if (key == "keep-going" && value.empty()) {
            options.keepGoing = true;
        } else if (key == "timeout") {
            if (!parsePositiveDouble(value, &options.timeoutSeconds))
                return usageError("--timeout expects a non-negative "
                                  "number of seconds, got \"" +
                                  value + "\"");
        } else if (key == "retries") {
            if (!parseNonNegativeInt(value, &options.retries))
                return usageError(
                    "--retries expects an integer in [0, 1000], got \"" +
                    value + "\"");
        } else if (key == "manifest") {
            options.manifestPath = value;
        } else if (key == "paper-model" && value.empty()) {
            // Convenience: the old binaries took --paper-model as a
            // bare switch; keep that spelling working.
            options.flags.emplace_back("paper-model", "true");
        } else {
            options.flags.emplace_back(key, value);
        }
    }
    if (options.smoke && options.full)
        return usageError("--smoke and --full are mutually exclusive");

    std::string spec_text;
    std::string spec_experiment;
    if (!options.specPath.empty()) {
        auto text = readFile(options.specPath);
        if (!text.isOk())
            return usageError(text.status().message());
        spec_text = std::move(text).value();
        auto parsed = spec::parseSpecText(spec_text, options.specPath);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "bigfish: %s\n",
                         parsed.status().message().c_str());
            return 2;
        }
        spec_experiment = parsed.value().experiment;
    }

    std::vector<std::string> names = options.experiments;
    if (options.all) {
        if (!names.empty())
            return usageError(
                "--all cannot be combined with experiment names");
        names = registry.names();
    } else if (names.empty() && !spec_experiment.empty()) {
        // `bigfish run --spec=artifact.json` replays the recorded
        // experiment without restating its name.
        names.push_back(spec_experiment);
    }
    if (names.empty())
        return usageError("no experiment named (see `bigfish list`, or "
                          "use --all)");
    if (options.help) {
        for (const auto &name : names) {
            const int rc = cmdDescribe(registry, name);
            if (rc != 0)
                return rc;
        }
        return 0;
    }
    if (!options.jsonPath.empty() && names.size() > 1)
        return usageError("--json=PATH only applies to a single "
                          "experiment; use --json-dir=DIR");

    // Create output directories up front so a missing --json-dir fails
    // before hours of collection, not after.
    for (const std::string &dir :
         {options.jsonDir, options.resumeDir, options.cacheDir}) {
        if (dir.empty())
            continue;
        const Status made = createDirectories(dir);
        if (!made.isOk()) {
            std::fprintf(stderr, "bigfish: %s\n",
                         made.message().c_str());
            return 1;
        }
    }
    if (options.manifestPath.empty() && !options.jsonDir.empty())
        options.manifestPath = options.jsonDir + "/suite-manifest.json";

    // Resolve every spec before running anything: a malformed value in
    // any source is a usage error (exit 2) caught up front, never a
    // mid-suite surprise.
    std::map<std::string, PreparedRun> prepared;
    for (const auto &name : names) {
        const auto *descriptor = registry.find(name);
        if (descriptor == nullptr)
            return usageError("unknown experiment \"" + name +
                              "\" (see `bigfish list`)");
        if (prepared.count(name) != 0)
            continue;

        spec::SpecSources sources;
        sources.env = envLookup;
        if (options.smoke) {
            sources.presets = core::smokeScaleOverrides();
            sources.presets.insert(sources.presets.end(),
                                   descriptor->smokeOverrides.begin(),
                                   descriptor->smokeOverrides.end());
        } else if (options.full) {
            sources.presets = core::fullScaleOverrides();
        }
        sources.specText = spec_text;
        sources.specName = options.specPath;
        sources.flags = options.flags;

        auto resolved =
            spec::resolveSpec(descriptor->name, descriptor->schema,
                              sources);
        if (!resolved.isOk()) {
            std::fprintf(stderr, "bigfish: %s\n",
                         resolved.status().message().c_str());
            return 2;
        }

        PreparedRun p;
        p.descriptor = descriptor;
        p.spec = std::move(resolved).value();
        if (!options.jsonPath.empty())
            p.artifactPath = options.jsonPath;
        else if (!options.jsonDir.empty())
            p.artifactPath = options.jsonDir + "/" + name + ".json";
        prepared.emplace(name, std::move(p));
    }

    core::SupervisorOptions supervisor_options;
    supervisor_options.keepGoing = options.keepGoing;
    supervisor_options.isolate = options.isolate;
    supervisor_options.timeoutSeconds = options.timeoutSeconds;
    supervisor_options.retry.maxAttempts = options.retries + 1;
    // Fixed seed: the retry schedule is part of the reproducible record,
    // not an entropy source (see base/retry.hh).
    supervisor_options.retry.seed = 2022;
    supervisor_options.manifestPath = options.manifestPath;
    supervisor_options.interrupted = &g_interrupted;

    const core::InProcessRun in_process =
        [&](const std::string &name,
            core::ExperimentOutcome &out) -> Status {
        PreparedRun &p = prepared.at(name);
        core::RunContext ctx;
        ctx.descriptor = p.descriptor;
        ctx.spec = p.spec;

        const int threads = static_cast<int>(ctx.spec.getInt("threads"));
        if (threads > 0)
            setGlobalThreads(threads);

        core::printExperimentBanner(ctx);
        Stopwatch wall;
        auto artifact = p.descriptor->run(ctx);
        if (!artifact.isOk())
            return artifact.status();
        artifact.value().setWallSeconds(wall.seconds());
        if (options.explain) {
            std::printf("\nstage graph (fingerprints + cache "
                        "provenance):\n%s",
                        artifact.value().explainText().c_str());
        }

        out.collectedTraces = artifact.value().collectedTraces();
        out.droppedTraces = artifact.value().droppedTraces();
        out.artifactPath = p.artifactPath;
        if (!p.artifactPath.empty()) {
            BF_RETURN_IF_ERROR(
                artifact.value().writeJson(p.artifactPath));
            std::printf("report written: %s\n", p.artifactPath.c_str());
        }
        return Status::ok();
    };

    const std::string exe = selfExecutable(argv0);
    const core::ChildCommand child_command =
        [&](const std::string &name) -> core::ChildPlan {
        core::ChildPlan plan;
        plan.argv = {exe, "run", name};
        if (options.smoke)
            plan.argv.push_back("--smoke");
        if (options.full)
            plan.argv.push_back("--full");
        if (!options.specPath.empty())
            plan.argv.push_back("--spec=" + options.specPath);
        if (options.explain)
            plan.argv.push_back("--explain");
        for (const auto &[key, value] : options.flags)
            plan.argv.push_back("--" + key + "=" + value);
        plan.artifactPath = prepared.at(name).artifactPath;
        if (!plan.artifactPath.empty())
            plan.argv.push_back("--json=" + plan.artifactPath);
        return plan;
    };

    const core::SuiteManifest manifest =
        core::Supervisor(supervisor_options)
            .run(names, in_process, child_command);

    if (names.size() > 1 || !manifest.allOk()) {
        std::printf("\nsuite summary:\n");
        for (const auto &o : manifest.outcomes)
            std::printf("  %-28s %-8s attempts=%d wall=%.1fs%s%s\n",
                        o.name.c_str(), core::runStateName(o.state),
                        o.attempts, o.wallSeconds,
                        o.message.empty() ? "" : "  ",
                        o.message.c_str());
        if (manifest.interrupted)
            std::printf("  (interrupted: remaining experiments "
                        "skipped)\n");
    }
    if (!supervisor_options.manifestPath.empty())
        std::printf("suite manifest: %s\n",
                    supervisor_options.manifestPath.c_str());
    return manifest.exitCode();
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGINT, handleInterrupt);
    std::signal(SIGTERM, handleInterrupt);

    core::ExperimentRegistry registry;
    bench::registerAllExperiments(registry);

    if (argc < 2) {
        printUsage();
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "help" || command == "--help" || command == "-h") {
        printUsage();
        return 0;
    }
    if (command == "list") {
        if (!args.empty())
            return usageError("`bigfish list` takes no arguments");
        return cmdList(registry);
    }
    if (command == "describe") {
        if (args.size() != 1)
            return usageError("usage: bigfish describe <experiment>");
        return cmdDescribe(registry, args[0]);
    }
    if (command == "run")
        return cmdRun(registry, args, argv[0]);
    return usageError("unknown command \"" + command +
                      "\" (expected list, describe, run or help)");
}
