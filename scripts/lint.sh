#!/usr/bin/env bash
# Static-analysis entry point: runs every checker available on this
# machine and fails on the first finding.
#
#   1. bigfish-lint  — always (built from tools/lint/ if needed): the
#                      project-specific determinism and error-propagation
#                      rules, configured by tools/lint/bigfish-lint.toml.
#   2. clang-tidy    — if installed: .clang-tidy checks over src/ using
#                      the compile database from build/.
#   3. cppcheck      — if installed: general C++ static analysis.
#
# Usage: scripts/lint.sh [--json]
#   --json  passes machine-readable output through from bigfish-lint.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
json=""
[ "${1:-}" = "--json" ] && json="--json"

echo "== [lint] bigfish-lint"
cmake -B "$repo/build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    > /dev/null
cmake --build "$repo/build" --target bigfish-lint -j "$jobs" > /dev/null
"$repo/build/tools/lint/bigfish-lint" \
    --root="$repo" \
    --config="$repo/tools/lint/bigfish-lint.toml" \
    $json \
    "$repo/src" "$repo/bench" "$repo/examples" "$repo/tests" \
    "$repo/tools/bigfish"

if command -v clang-tidy > /dev/null 2>&1; then
    echo "== [lint] clang-tidy"
    find "$repo/src" -name '*.cc' -print0 |
        xargs -0 -P "$jobs" -n 8 clang-tidy -p "$repo/build" --quiet
else
    echo "== [lint] clang-tidy not installed, skipping"
fi

if command -v cppcheck > /dev/null 2>&1; then
    echo "== [lint] cppcheck"
    cppcheck --enable=warning,performance,portability \
        --suppress=missingIncludeSystem --inline-suppr \
        --error-exitcode=1 --quiet -j "$jobs" \
        -I "$repo/src" "$repo/src"
else
    echo "== [lint] cppcheck not installed, skipping"
fi

echo "== [lint] all available checkers passed"
