#!/usr/bin/env bash
# Performance trajectory harness: runs the kernel micro-benchmarks and the
# headline table1_fingerprinting experiment, then merges both into a single
# BENCH_pr2.json at the repo root together with the recorded pre-PR serial
# baseline so the speedup is tracked across PRs.
#
# Usage: scripts/bench.sh [OUTPUT_JSON] [--threads=N]
#   OUTPUT_JSON defaults to BENCH_pr2.json at the repo root.
#   --threads defaults to 4 (the acceptance configuration).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/BENCH_pr2.json"
threads=4
for arg in "$@"; do
    case "$arg" in
      --threads=*) threads="${arg#--threads=}" ;;
      *) out="$arg" ;;
    esac
done

builddir="$repo/build"
cmake -B "$builddir" -S "$repo" >/dev/null
cmake --build "$builddir" -j "$(nproc 2>/dev/null || echo 4)" >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== micro kernel benchmarks"
"$builddir/bench/micro_components" \
    --benchmark_filter='Matmul|Gemv|Matvec|Dot' \
    --benchmark_out="$tmpdir/micro.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2

echo "== table1_fingerprinting (default scale, --threads=$threads)"
start="$(date +%s.%N)"
"$builddir/bigfish" run table1_fingerprinting --threads="$threads" \
    --json="$tmpdir/table1.json" > "$tmpdir/table1.log"
end="$(date +%s.%N)"
tail -n 40 "$tmpdir/table1.log"

python3 - "$tmpdir" "$out" "$threads" "$start" "$end" <<'PY'
import json
import sys

tmpdir, out, threads, start, end = sys.argv[1:6]
wall = float(end) - float(start)

# Serial wall-clock of bench/table1_fingerprinting at default scale on the
# reference container, measured at the seed commit (9af0416) before this
# PR's parallel engine + kernel/sampler rewrites landed.
baseline = {
    "commit": "9af0416",
    "experiment": "table1_fingerprinting",
    "scale": "default",
    "threads": 1,
    "wallSeconds": 385.9,
}

with open(f"{tmpdir}/table1.json") as f:
    table1 = json.load(f)
with open(f"{tmpdir}/micro.json") as f:
    micro = json.load(f)

kernels = {
    b["name"]: {"timeNs": b["real_time"], "cpuNs": b["cpu_time"]}
    for b in micro.get("benchmarks", [])
}

report = {
    "bench": "pr2",
    "baseline": baseline,
    "table1": table1,
    "table1WallSeconds": round(wall, 3),
    "threads": int(threads),
    "speedupVsBaseline": round(baseline["wallSeconds"] / wall, 2),
    "microKernels": kernels,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out}: {wall:.1f}s vs baseline "
      f"{baseline['wallSeconds']}s -> {report['speedupVsBaseline']}x")
PY
