#!/usr/bin/env bash
# Performance trajectory harness: runs the kernel micro-benchmarks (including
# the per-ISA sweep of the SIMD kernel layer) and the headline
# table1_fingerprinting experiment four times — a coldNoCache run with no
# --cache-dir at all, which is the PR 10 acceptance configuration (pure
# simulate+featurize+train wall clock, nothing amortized); a cold run that
# fills an empty --cache-dir; a warm run that replays every stage from it;
# and an eval-only warm run with just --topk changed, which must skip
# collection AND training via the stage cache — then merges everything into
# a single BENCH_pr10.json at the repo root together with the recorded
# pre-PR baselines so the speedup is tracked across PRs.
#
# Usage: scripts/bench.sh [OUTPUT_JSON] [--threads=N]
#   OUTPUT_JSON defaults to BENCH_pr10.json at the repo root.
#   --threads defaults to 4 (the acceptance configuration).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/BENCH_pr10.json"
threads=4
for arg in "$@"; do
    case "$arg" in
      --threads=*) threads="${arg#--threads=}" ;;
      *) out="$arg" ;;
    esac
done

builddir="$repo/build"
cmake -B "$builddir" -S "$repo" >/dev/null
cmake --build "$builddir" -j "$(nproc 2>/dev/null || echo 4)" >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== micro kernel benchmarks (scalar vs SIMD)"
"$builddir/bench/micro_components" \
    --benchmark_filter='Matmul|Gemv|Matvec|Dot|ByIsa' \
    --benchmark_out="$tmpdir/micro.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2

echo "== table1_fingerprinting coldNoCache (no --cache-dir, --threads=$threads)"
start_nocache="$(date +%s.%N)"
"$builddir/bigfish" run table1_fingerprinting --threads="$threads" \
    --json="$tmpdir/table1_nocache.json" > "$tmpdir/table1_nocache.log"
end_nocache="$(date +%s.%N)"
tail -n 40 "$tmpdir/table1_nocache.log"

echo "== table1_fingerprinting cold (--threads=$threads, empty cache)"
start_cold="$(date +%s.%N)"
"$builddir/bigfish" run table1_fingerprinting --threads="$threads" \
    --cache-dir="$tmpdir/cache" \
    --json="$tmpdir/table1_cold.json" > "$tmpdir/table1_cold.log"
end_cold="$(date +%s.%N)"

echo "== table1_fingerprinting warm (same cache: replay featurized datasets)"
start_warm="$(date +%s.%N)"
"$builddir/bigfish" run table1_fingerprinting --threads="$threads" \
    --cache-dir="$tmpdir/cache" \
    --json="$tmpdir/table1_warm.json" > "$tmpdir/table1_warm.log"
end_warm="$(date +%s.%N)"
grep -c 'stage cache: hit' "$tmpdir/table1_warm.log" ||
    { echo "ERROR: warm run did not hit the stage cache"; exit 1; }

echo "== table1_fingerprinting eval-only sweep (--topk=3: cached models+scores)"
start_sweep="$(date +%s.%N)"
"$builddir/bigfish" run table1_fingerprinting --threads="$threads" \
    --cache-dir="$tmpdir/cache" --topk=3 --explain \
    --json="$tmpdir/table1_sweep.json" > "$tmpdir/table1_sweep.log"
end_sweep="$(date +%s.%N)"
grep -c 'stage cache: hit' "$tmpdir/table1_sweep.log" ||
    { echo "ERROR: eval-only sweep did not hit the stage cache"; exit 1; }
if grep -Eq '/train/[^ ]+ +\| train +\| [0-9a-f]{16} \| (stored|miss)' \
    "$tmpdir/table1_sweep.log"; then
    echo "ERROR: eval-only sweep retrained a fold" >&2
    exit 1
fi

python3 - "$tmpdir" "$out" "$threads" \
    "$start_nocache" "$end_nocache" \
    "$start_cold" "$end_cold" "$start_warm" "$end_warm" \
    "$start_sweep" "$end_sweep" <<'PY'
import json
import sys

tmpdir, out, threads, sn, en, sc, ec, sw, ew, ss, es = sys.argv[1:12]
nocache = float(en) - float(sn)
cold = float(ec) - float(sc)
warm = float(ew) - float(sw)
sweep = float(es) - float(ss)

# Reference points on this container, default scale:
#  - seed commit (9af0416): serial pre-rewrite wall clock.
#  - PR 2 (BENCH_pr2.json): parallel engine + blocked kernels, --threads=4.
baselines = {
    "seedSerial": {
        "commit": "9af0416",
        "threads": 1,
        "wallSeconds": 385.9,
    },
    "pr2": {
        "commit": "67f54e5",
        "threads": 4,
        "wallSeconds": 119.416,
    },
}

with open(f"{tmpdir}/table1_nocache.json") as f:
    table1_nocache = json.load(f)
with open(f"{tmpdir}/table1_cold.json") as f:
    table1_cold = json.load(f)
with open(f"{tmpdir}/table1_warm.json") as f:
    table1_warm = json.load(f)
with open(f"{tmpdir}/table1_sweep.json") as f:
    table1_sweep = json.load(f)
with open(f"{tmpdir}/micro.json") as f:
    micro = json.load(f)

kernels = {
    b["name"]: {"timeNs": b["real_time"], "cpuNs": b["cpu_time"]}
    for b in micro.get("benchmarks", [])
}

pr2 = baselines["pr2"]["wallSeconds"]
report = {
    "bench": "pr10",
    "baselines": baselines,
    "threads": int(threads),
    # coldNoCache is the honest simulator number: no cache directory, so
    # wall clock is pure simulate+featurize+train with zero amortization.
    # The cached cold run additionally pays stage-cache serialization.
    "table1ColdNoCacheWallSeconds": round(nocache, 3),
    "table1ColdWallSeconds": round(cold, 3),
    "table1WarmWallSeconds": round(warm, 3),
    # The eval-only sweep changes just --topk: collection, featurization
    # and every fold's training replay from the stage cache, so this is
    # the marginal cost of re-asking an evaluation question.
    "table1EvalOnlySweepWallSeconds": round(sweep, 3),
    # Acceptance metrics (ISSUE 10): the no-cache cold run against the
    # PR 2 recording at the same thread count must be >= 1.3x, and the
    # warm (cached) run must stay >= 50x.
    "speedupVsPr2ColdNoCache": round(pr2 / nocache, 2),
    "speedupVsPr2Cold": round(pr2 / cold, 2),
    "speedupVsPr2Warm": round(pr2 / warm, 2),
    "speedupVsSeedWarm": round(
        baselines["seedSerial"]["wallSeconds"] / warm, 2),
    "evalOnlySweepSpeedupVsCold": round(cold / sweep, 2),
    "table1ColdNoCache": table1_nocache,
    "table1Cold": table1_cold,
    "table1Warm": table1_warm,
    "table1EvalOnlySweep": table1_sweep,
    "microKernels": kernels,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out}: coldNoCache {nocache:.1f}s, cold {cold:.1f}s, "
      f"warm {warm:.1f}s, eval-only sweep {sweep:.1f}s vs PR2 {pr2}s "
      f"-> {report['speedupVsPr2ColdNoCache']}x coldNoCache, "
      f"{report['speedupVsPr2Cold']}x cold, "
      f"{report['speedupVsPr2Warm']}x warm")
PY
