#!/usr/bin/env bash
# Pre-merge verification gate. Stages, in default order:
#
#   lint      — bigfish-lint over src/ bench/ examples/ tests/ with the
#               checked-in config (tools/lint/bigfish-lint.toml): the
#               determinism and error-propagation invariants, enforced
#               statically. Fails on any finding.
#   cppcheck  — general C++ static analysis; skipped with a notice when
#               cppcheck is not installed.
#   address   — full build + ctest under AddressSanitizer.
#   undefined — full build + ctest under UBSan.
#   thread    — full build + ctest under ThreadSanitizer.
#   threads8  — plain build + ctest with BF_THREADS=8 to exercise the
#               parallel execution paths (and the bit-identity tests).
#
# Sanitizer and threads8 stages build with BIGFISH_WERROR=ON so the
# hardened warning set (-Wall -Wextra -Wshadow -Wconversion) gates the
# merge as well. The plain (unsanitized) build stays in build/.
#
# Usage: scripts/check.sh [lint|cppcheck|address|undefined|thread|threads8]...
#   With no arguments, runs every stage.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(lint cppcheck address undefined thread threads8)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for stage in "${stages[@]}"; do
    case "$stage" in
      lint)
        echo "== [lint] build bigfish-lint"
        cmake -B "$repo/build" -S "$repo" > /dev/null
        cmake --build "$repo/build" --target bigfish-lint -j "$jobs"
        echo "== [lint] bigfish-lint over src/ bench/ examples/ tests/"
        "$repo/build/tools/lint/bigfish-lint" \
            --root="$repo" \
            --config="$repo/tools/lint/bigfish-lint.toml" \
            "$repo/src" "$repo/bench" "$repo/examples" "$repo/tests"
        ;;
      cppcheck)
        if command -v cppcheck > /dev/null 2>&1; then
            echo "== [cppcheck] src/"
            cppcheck --enable=warning,performance,portability \
                --suppress=missingIncludeSystem --inline-suppr \
                --error-exitcode=1 --quiet -j "$jobs" \
                -I "$repo/src" "$repo/src"
        else
            echo "== [cppcheck] not installed, skipping"
        fi
        ;;
      address|undefined|thread)
        san="$stage"
        builddir="$repo/build-$san"
        echo "== [$san] configure -> $builddir"
        cmake -B "$builddir" -S "$repo" -DBIGFISH_SANITIZE="$san" \
            -DBIGFISH_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
        echo "== [$san] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [$san] ctest"
        # Sanitizers only see threading bugs on paths that actually spawn
        # workers, so force a multi-threaded pool even on small machines.
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j 1)
        ;;
      threads8)
        builddir="$repo/build"
        echo "== [threads8] configure -> $builddir"
        cmake -B "$builddir" -S "$repo" -DBIGFISH_WERROR=ON
        echo "== [threads8] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [threads8] ctest with BF_THREADS=8"
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j "$jobs")
        ;;
      *)
        echo "unknown stage '$stage' (want lint, cppcheck, address," \
             "undefined, thread or threads8)" >&2
        exit 2
        ;;
    esac
done

echo "== all verification stages passed"
