#!/usr/bin/env bash
# Tier-1 verification under sanitizers: builds the full tree and runs the
# test suite under AddressSanitizer, UBSan and ThreadSanitizer, then
# repeats the plain suite with BF_THREADS=8 to exercise the parallel
# execution paths. Intended as the pre-merge robustness gate; the plain
# (unsanitized) build stays in build/ untouched.
#
# Usage: scripts/check.sh [address|undefined|thread|threads8]...
#   With no arguments, runs every stage.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(address undefined thread threads8)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for stage in "${stages[@]}"; do
    case "$stage" in
      address|undefined|thread)
        san="$stage"
        builddir="$repo/build-$san"
        echo "== [$san] configure -> $builddir"
        cmake -B "$builddir" -S "$repo" -DBIGFISH_SANITIZE="$san" \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
        echo "== [$san] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [$san] ctest"
        # Sanitizers only see threading bugs on paths that actually spawn
        # workers, so force a multi-threaded pool even on small machines.
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j 1)
        ;;
      threads8)
        builddir="$repo/build"
        echo "== [threads8] configure -> $builddir"
        cmake -B "$builddir" -S "$repo"
        echo "== [threads8] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [threads8] ctest with BF_THREADS=8"
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j "$jobs")
        ;;
      *)
        echo "unknown stage '$stage' (want address, undefined, thread" \
             "or threads8)" >&2
        exit 2
        ;;
    esac
done

echo "== all verification stages passed"
