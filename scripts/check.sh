#!/usr/bin/env bash
# Pre-merge verification gate. Stages, in default order:
#
#   lint-diff — bigfish-lint --since=origin/main (HEAD~1 when there is
#               no origin/main): the fast first gate, linting only the
#               files this branch changed while the cross-TU passes
#               still scan the whole tree. Skipped (with a notice) in
#               a repo with no base revision.
#   lint      — bigfish-lint over src/ bench/ examples/ tests/ and
#               tools/bigfish/ with the checked-in config
#               (tools/lint/bigfish-lint.toml): the determinism,
#               error-propagation, layering and concurrency invariants,
#               enforced statically. Fails on any non-baselined
#               finding; also writes build/lint.sarif for CI upload.
#   cppcheck  — general C++ static analysis; skipped with a notice when
#               cppcheck is not installed.
#   cli-smoke — `bigfish run --all --smoke`: every registered experiment
#               end-to-end at tiny scale, plus CLI exit-code/usage
#               checks (strict env validation, unknown-flag rejection).
#   resume-smoke — kill -9 a checkpointed run mid-collection, `--resume`
#               it and require a bit-identical artifact; then force an
#               IO-crash under `--isolate --keep-going` and require
#               exit 1 with a complete suite manifest (crashed + ok).
#   simd      — the DESIGN.md §10 determinism gate: the kernel test
#               binary under BF_SIMD=scalar, sse2 and avx2; three
#               table1 smokes (one per BF_SIMD) whose artifacts must be
#               bit-identical; and a cache-reuse smoke — two runs with
#               --cache-dir where the second must hit the stage cache
#               and replay a bit-identical artifact.
#   stage-cache — the stage-graph reuse gate: a cold --cache-dir run,
#               then a warm run with only eval folds changed (must skip
#               Collect/Featurize but retrain) and a warm run with only
#               --topk changed (must replay fold scores and skip
#               training entirely), each proven via --explain
#               provenance and bit-identical to a fresh uncached run.
#   sim-perf  — the simulator perf-counter gate (DESIGN.md §13): the
#               test_sim_perf determinism suite, then a table1 smoke
#               whose --explain table and schemaVersion-3 artifact must
#               carry the per-stage sim counters, with the counter
#               values identical across --threads and BF_SIMD.
#   address   — full build + ctest under AddressSanitizer.
#   undefined — full build + ctest under UBSan.
#   thread    — full build + ctest under ThreadSanitizer.
#   threads8  — plain build + ctest with BF_THREADS=8 to exercise the
#               parallel execution paths (and the bit-identity tests).
#
# Sanitizer and threads8 stages build with BIGFISH_WERROR=ON so the
# hardened warning set (-Wall -Wextra -Wshadow -Wconversion) gates the
# merge as well. The plain (unsanitized) build stays in build/.
#
# Every run ends with a summary table (stage, result, wall time). A
# stage that cannot run because its tool is missing reports `skipped`;
# with BIGFISH_REQUIRE_TOOLS=1 in the environment (CI), any skipped
# stage fails the gate instead of silently passing.
#
# Usage:
#   scripts/check.sh [lint-diff|lint|cppcheck|cli-smoke|resume-smoke|simd|stage-cache|sim-perf|address|undefined|thread|threads8]...
#   With no arguments, runs every stage.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(lint-diff lint cppcheck cli-smoke resume-smoke simd stage-cache
            sim-perf address undefined thread threads8)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

# Temp dirs registered by stages; removed on exit.
tmpdirs=()
cleanup() { [ ${#tmpdirs[@]} -gt 0 ] && rm -rf "${tmpdirs[@]}"; return 0; }

# --- End-of-run summary ------------------------------------------------
# Each completed stage appends (name, result, seconds); the EXIT trap
# prints the table even when a stage aborts the run, marking the stage
# that was in flight as failed.
summary_names=()
summary_states=()
summary_secs=()
current_stage=""
stage_begin=0
stage_state=ok

record_stage() {
    summary_names+=("$1")
    summary_states+=("$2")
    summary_secs+=("$3")
}

finish() {
    rc=$?
    cleanup
    if [ -n "$current_stage" ]; then
        record_stage "$current_stage" failed "$((SECONDS - stage_begin))"
    fi
    if [ ${#summary_names[@]} -gt 0 ]; then
        echo
        echo "== stage summary"
        printf '   %-14s %-8s %8s\n' stage result seconds
        skipped=0
        for i in "${!summary_names[@]}"; do
            printf '   %-14s %-8s %8s\n' "${summary_names[$i]}" \
                "${summary_states[$i]}" "${summary_secs[$i]}"
            [ "${summary_states[$i]}" = skipped ] && skipped=$((skipped + 1))
        done
        if [ "$rc" -eq 0 ] && [ "$skipped" -gt 0 ] &&
           [ "${BIGFISH_REQUIRE_TOOLS:-0}" = "1" ]; then
            echo "== $skipped stage(s) skipped but BIGFISH_REQUIRE_TOOLS=1:" \
                 "failing the gate" >&2
            rc=1
        fi
    fi
    if [ "$rc" -eq 0 ]; then
        echo "== all verification stages passed"
    fi
    exit "$rc"
}
trap finish EXIT

for stage in "${stages[@]}"; do
    current_stage="$stage"
    stage_begin=$SECONDS
    stage_state=ok
    case "$stage" in
      lint-diff)
        echo "== [lint-diff] build bigfish-lint"
        cmake -B "$repo/build" -S "$repo" > /dev/null
        cmake --build "$repo/build" --target bigfish-lint -j "$jobs"
        base=""
        if git -C "$repo" rev-parse --verify -q origin/main > /dev/null
        then
            base=origin/main
        elif git -C "$repo" rev-parse --verify -q HEAD~1 > /dev/null; then
            base=HEAD~1
        fi
        if [ -z "$base" ]; then
            echo "== [lint-diff] no base revision to diff against, skipping"
            stage_state=skipped
        else
            echo "== [lint-diff] bigfish-lint --since=$base"
            "$repo/build/tools/lint/bigfish-lint" \
                --root="$repo" \
                --config="$repo/tools/lint/bigfish-lint.toml" \
                --since="$base" \
                "$repo/src" "$repo/bench" "$repo/examples" "$repo/tests" \
                "$repo/tools/bigfish"
        fi
        ;;
      lint)
        echo "== [lint] build bigfish-lint"
        cmake -B "$repo/build" -S "$repo" > /dev/null
        cmake --build "$repo/build" --target bigfish-lint -j "$jobs"
        echo "== [lint] bigfish-lint over src/ bench/ examples/ tests/" \
             "tools/bigfish/"
        "$repo/build/tools/lint/bigfish-lint" \
            --root="$repo" \
            --config="$repo/tools/lint/bigfish-lint.toml" \
            --sarif="$repo/build/lint.sarif" \
            "$repo/src" "$repo/bench" "$repo/examples" "$repo/tests" \
            "$repo/tools/bigfish"
        echo "== [lint] SARIF report: build/lint.sarif"
        ;;
      cppcheck)
        if command -v cppcheck > /dev/null 2>&1; then
            echo "== [cppcheck] src/"
            cppcheck --enable=warning,performance,portability \
                --suppress=missingIncludeSystem --inline-suppr \
                --error-exitcode=1 --quiet -j "$jobs" \
                -I "$repo/src" "$repo/src"
        else
            echo "== [cppcheck] not installed, skipping"
            stage_state=skipped
        fi
        ;;
      cli-smoke)
        builddir="$repo/build"
        echo "== [cli-smoke] build bigfish"
        cmake -B "$builddir" -S "$repo" > /dev/null
        cmake --build "$builddir" --target bigfish -j "$jobs"
        smokedir="$(mktemp -d)"
        tmpdirs+=("$smokedir")
        echo "== [cli-smoke] bigfish run --all --smoke"
        "$builddir/bigfish" run --all --smoke --threads=2 \
            --json-dir="$smokedir" > "$smokedir/run.log"
        # One artifact per experiment; the suite manifest also lands in
        # --json-dir and is not an experiment artifact.
        count="$(ls "$smokedir"/*.json | grep -cv suite-manifest)"
        listed="$("$builddir/bigfish" list | grep -c '\[')"
        echo "== [cli-smoke] $count artifact(s) for $listed experiment(s)"
        [ "$count" -eq "$listed" ]
        echo "== [cli-smoke] usage and validation exit codes"
        # Strict env validation (satellite invariant): a garbage BF_*
        # value must fail naming the variable, not be silently eaten.
        if BF_SITES=abc "$builddir/bigfish" run fig7_timer_outputs \
            > /dev/null 2> "$smokedir/err.log"; then
            echo "BF_SITES=abc unexpectedly accepted" >&2; exit 1
        fi
        grep -q "environment variable BF_SITES" "$smokedir/err.log"
        if "$builddir/bigfish" run no_such_experiment > /dev/null 2>&1
        then
            echo "unknown experiment unexpectedly accepted" >&2; exit 1
        fi
        "$builddir/bigfish" list > /dev/null
        "$builddir/bigfish" describe table1_fingerprinting > /dev/null
        ;;
      resume-smoke)
        builddir="$repo/build"
        echo "== [resume-smoke] build bigfish"
        cmake -B "$builddir" -S "$repo" > /dev/null
        cmake --build "$builddir" --target bigfish -j "$jobs"
        rdir="$(mktemp -d)"
        tmpdirs+=("$rdir")
        echo "== [resume-smoke] reference run (no checkpointing)"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --json="$rdir/ref.json" > /dev/null
        echo "== [resume-smoke] kill -9 mid-collection, then --resume"
        # Background the binary DIRECTLY (no compound command): $! must
        # be the bigfish pid itself, or the kill orphans the child and
        # it races the resumed run.
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --resume="$rdir/ckpt" --json="$rdir/out.json" \
            > "$rdir/first.log" 2>&1 &
        pid=$!
        # Kill as soon as at least one journal record has been committed.
        for _ in $(seq 1 200); do
            if grep -lq '@rec' "$rdir"/ckpt/*.journal 2>/dev/null; then
                break
            fi
            sleep 0.05
        done
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --resume="$rdir/ckpt" --json="$rdir/out.json" \
            > "$rdir/resume.log"
        if ! grep -q 'resuming:' "$rdir/resume.log"; then
            echo "== [resume-smoke] note: first run finished before the" \
                 "kill landed (resume path not exercised this time)"
        fi
        # Timings differ run to run and the config echo names the resume
        # dir; every result line must be identical.
        if ! diff <(grep -v -e 'Seconds' -e '"resume"' "$rdir/ref.json") \
                  <(grep -v -e 'Seconds' -e '"resume"' "$rdir/out.json"); then
            echo "resumed artifact differs from reference" >&2
            exit 1
        fi
        echo "== [resume-smoke] resumed artifact is bit-identical"
        echo "== [resume-smoke] forced IO crash under --isolate --keep-going"
        rc=0
        "$builddir/bigfish" run table1_fingerprinting fig3_traces --smoke \
            --threads=2 --isolate --keep-going --resume="$rdir/crash-ckpt" \
            --io-crash-after=1 --json-dir="$rdir/crash" \
            > "$rdir/crash.log" 2>&1 || rc=$?
        manifest="$rdir/crash/suite-manifest.json"
        if [ "$rc" -ne 1 ]; then
            echo "expected suite exit 1 after forced crash, got $rc" >&2
            exit 1
        fi
        grep -q '"state": "crashed"' "$manifest"
        grep -q '"name": "fig3_traces", "state": "ok"' "$manifest"
        echo "== [resume-smoke] manifest records the crash; suite completed"
        ;;
      simd)
        builddir="$repo/build"
        echo "== [simd] build bigfish + test_kernel"
        cmake -B "$builddir" -S "$repo" > /dev/null
        cmake --build "$builddir" --target bigfish test_kernel -j "$jobs"
        sdir="$(mktemp -d)"
        tmpdirs+=("$sdir")
        for isa in scalar sse2 avx2; do
            echo "== [simd] kernel tests under BF_SIMD=$isa"
            BF_SIMD="$isa" "$builddir/tests/test_kernel" \
                > "$sdir/kernel-$isa.log" ||
                { tail -n 40 "$sdir/kernel-$isa.log"; exit 1; }
        done
        echo "== [simd] BF_SIMD artifact bit-identity (table1 --smoke)"
        for isa in scalar sse2 avx2; do
            BF_SIMD="$isa" "$builddir/bigfish" run table1_fingerprinting \
                --smoke --threads=2 --json="$sdir/t1-$isa.json" > /dev/null
        done
        for isa in sse2 avx2; do
            # Timings are the only run-to-run difference allowed.
            if ! diff <(grep -v 'Seconds' "$sdir/t1-scalar.json") \
                      <(grep -v 'Seconds' "$sdir/t1-$isa.json"); then
                echo "BF_SIMD=$isa artifact differs from scalar" >&2
                exit 1
            fi
        done
        echo "== [simd] artifacts bit-identical across BF_SIMD values"
        echo "== [simd] cache-reuse smoke (two runs, one --cache-dir)"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --cache-dir="$sdir/cache" --json="$sdir/cold.json" \
            > "$sdir/cold.log"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --cache-dir="$sdir/cache" --json="$sdir/warm.json" \
            > "$sdir/warm.log"
        grep -q 'stage cache: hit' "$sdir/warm.log" ||
            { echo "second --cache-dir run did not hit the cache" >&2
              exit 1; }
        if ! diff <(grep -v 'Seconds' "$sdir/cold.json") \
                  <(grep -v 'Seconds' "$sdir/warm.json"); then
            echo "cached replay artifact differs from cold run" >&2
            exit 1
        fi
        echo "== [simd] cached replay is bit-identical"
        ;;
      stage-cache)
        builddir="$repo/build"
        echo "== [stage-cache] build bigfish"
        cmake -B "$builddir" -S "$repo" > /dev/null
        cmake --build "$builddir" --target bigfish -j "$jobs"
        cdir="$(mktemp -d)"
        tmpdirs+=("$cdir")
        echo "== [stage-cache] cold run (populates the cache)"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --folds=3 --cache-dir="$cdir/cache" --explain \
            --json="$cdir/cold.json" > "$cdir/cold.log"
        grep -q 'stage cache: featurized miss' "$cdir/cold.log"
        echo "== [stage-cache] warm run, only eval folds changed"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --folds=2 --cache-dir="$cdir/cache" --explain \
            --json="$cdir/warm-folds.json" > "$cdir/warm-folds.log"
        # Featurized datasets replay, so collection never runs ...
        grep -q 'stage cache: hit' "$cdir/warm-folds.log"
        grep -Eq '/collect +\| collect +\| [0-9a-f]{16} \| skipped' \
            "$cdir/warm-folds.log"
        # ... but the changed fold split forces retraining.
        grep -Eq '/train/[^ ]+ +\| train +\| [0-9a-f]{16} \| stored' \
            "$cdir/warm-folds.log"
        echo "== [stage-cache] warm run, only --topk changed"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --folds=3 --topk=3 --cache-dir="$cdir/cache" --explain \
            --json="$cdir/warm-topk.json" > "$cdir/warm-topk.log"
        # Fold scores replay from the cache; training never runs.
        grep -Eq '/score/[^ ]+ +\| eval +\| [0-9a-f]{16} \| hit' \
            "$cdir/warm-topk.log"
        grep -Eq '/train/[^ ]+ +\| train +\| [0-9a-f]{16} \| skipped' \
            "$cdir/warm-topk.log"
        if grep -Eq '/train/[^ ]+ +\| train +\| [0-9a-f]{16} \| (stored|miss)' \
            "$cdir/warm-topk.log"; then
            echo "a --topk-only change retrained a fold" >&2
            exit 1
        fi
        echo "== [stage-cache] warm artifacts vs fresh uncached runs"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --folds=2 --json="$cdir/fresh-folds.json" > /dev/null
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --folds=3 --topk=3 --json="$cdir/fresh-topk.json" > /dev/null
        for variant in folds topk; do
            # Per-stage rows carry Seconds keys (timing and cache
            # provenance legitimately differ); the cache-dir spec echo
            # differs by construction. Everything else must match.
            if ! diff \
                <(grep -v -e 'Seconds' -e 'cache-dir' \
                    "$cdir/warm-$variant.json") \
                <(grep -v -e 'Seconds' -e 'cache-dir' \
                    "$cdir/fresh-$variant.json"); then
                echo "warm-$variant artifact differs from a fresh run" >&2
                exit 1
            fi
        done
        echo "== [stage-cache] cached reuse is provenance-clean and" \
             "bit-identical"
        ;;
      sim-perf)
        builddir="$repo/build"
        echo "== [sim-perf] build bigfish + test_sim_perf"
        cmake -B "$builddir" -S "$repo" > /dev/null
        cmake --build "$builddir" --target bigfish test_sim_perf -j "$jobs"
        pdir="$(mktemp -d)"
        tmpdirs+=("$pdir")
        echo "== [sim-perf] counter determinism tests"
        "$builddir/tests/test_sim_perf" > "$pdir/unit.log" ||
            { tail -n 40 "$pdir/unit.log"; exit 1; }
        echo "== [sim-perf] counters surface in --explain and the artifact"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=2 \
            --explain --json="$pdir/t2.json" > "$pdir/explain.log"
        grep -q 'sim_events' "$pdir/explain.log"
        grep -q '"simEvents": ' "$pdir/t2.json"
        grep -q '"simBytesSorted": ' "$pdir/t2.json"
        echo "== [sim-perf] counters identical across threads and BF_SIMD"
        "$builddir/bigfish" run table1_fingerprinting --smoke --threads=1 \
            --json="$pdir/t1.json" > /dev/null
        BF_SIMD=scalar "$builddir/bigfish" run table1_fingerprinting \
            --smoke --threads=2 --json="$pdir/t2s.json" > /dev/null
        # The sim* counters ride on the cpuSeconds stage lines, so the
        # generic 'Seconds'-filtered artifact diffs elsewhere in this
        # script never see them; compare the counter values directly.
        # simEventsPerSec is a timing-derived rate and legitimately
        # varies — only the four work counters must be deterministic.
        counters='"sim(Events|Interrupts|Allocations|BytesSorted)": [0-9]*'
        for run in t1 t2s; do
            if ! diff \
                <(grep -oE "$counters" "$pdir/t2.json") \
                <(grep -oE "$counters" "$pdir/$run.json"); then
                echo "sim counters differ between t2 and $run" >&2
                exit 1
            fi
        done
        # A counter-free artifact would make the loop above pass
        # vacuously; require at least one nonzero eventsSimulated row.
        grep -Eq '"simEvents": [1-9]' "$pdir/t2.json"
        echo "== [sim-perf] per-stage sim counters are deterministic"
        ;;
      address|undefined|thread)
        san="$stage"
        builddir="$repo/build-$san"
        echo "== [$san] configure -> $builddir"
        cmake -B "$builddir" -S "$repo" -DBIGFISH_SANITIZE="$san" \
            -DBIGFISH_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
        echo "== [$san] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [$san] ctest"
        # Sanitizers only see threading bugs on paths that actually spawn
        # workers, so force a multi-threaded pool even on small machines.
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j 1)
        ;;
      threads8)
        builddir="$repo/build"
        echo "== [threads8] configure -> $builddir"
        cmake -B "$builddir" -S "$repo" -DBIGFISH_WERROR=ON
        echo "== [threads8] build"
        cmake --build "$builddir" -j "$jobs"
        echo "== [threads8] ctest with BF_THREADS=8"
        (cd "$builddir" && BF_THREADS=8 ctest --output-on-failure -j "$jobs")
        ;;
      *)
        echo "unknown stage '$stage' (want lint-diff, lint, cppcheck," \
             "cli-smoke, resume-smoke, simd, stage-cache, sim-perf," \
             "address, undefined, thread or threads8)" >&2
        exit 2
        ;;
    esac
    record_stage "$stage" "$stage_state" "$((SECONDS - stage_begin))"
    current_stage=""
done
