#!/usr/bin/env bash
# Tier-1 verification under sanitizers: builds the full tree and runs the
# test suite once under AddressSanitizer and once under UBSan. Intended
# as the pre-merge robustness gate; the plain (unsanitized) build stays
# in build/ untouched.
#
# Usage: scripts/check.sh [address|undefined]...
#   With no arguments, runs both sanitizers.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
    sanitizers=(address undefined)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for san in "${sanitizers[@]}"; do
    case "$san" in
      address|undefined) ;;
      *)
        echo "unknown sanitizer '$san' (want address or undefined)" >&2
        exit 2
        ;;
    esac
    builddir="$repo/build-$san"
    echo "== [$san] configure -> $builddir"
    cmake -B "$builddir" -S "$repo" -DBIGFISH_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    echo "== [$san] build"
    cmake --build "$builddir" -j "$jobs"
    echo "== [$san] ctest"
    (cd "$builddir" && ctest --output-on-failure -j "$jobs")
done

echo "== all sanitizer runs passed"
