/**
 * @file
 * Pins Rng's inlined distribution fast paths to the <random> semantics
 * they replicate.
 *
 * Rng::uniform/normal/lognormal/exponential used to construct a fresh
 * std distribution object per draw; the hot-path rewrite replaced them
 * with inline replicas of the libstdc++ algorithms (generate_canonical
 * over one 64-bit draw, Marsaglia polar without the saved-deviate
 * cache) so the simulator's deviate streams stay bit-identical to
 * every trace recorded before the rewrite. These tests drive an Rng
 * and a same-seeded reference engine side by side and require exact
 * bit equality against freshly constructed std distributions — the
 * construct-per-call pattern Rng always used, which is what makes the
 * uncached replica exact.
 *
 * The comparison encodes libstdc++'s implementation, which ROADMAP
 * and DESIGN already pin as the reproducibility baseline (the
 * byArrival introsort permutation has the same dependence), so it is
 * compiled only under __GLIBCXX__. The value-level invariants at the
 * bottom hold on any standard library.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/mt64.hh"
#include "base/rng.hh"
#include "base/simd.hh"

namespace {

using bigfish::Rng;

/** A reference engine positioned identically to rng's internal one. */
std::mt19937_64
referenceEngine(std::uint64_t seed)
{
    return std::mt19937_64(bigfish::mix64(seed));
}

#if defined(__GLIBCXX__)

TEST(RngExact, UniformMatchesStdUniformRealDistribution)
{
    Rng rng(2022);
    std::mt19937_64 ref = referenceEngine(2022);
    for (int i = 0; i < 200000; ++i) {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        const double expected = dist(ref);
        ASSERT_EQ(rng.uniform(), expected) << "draw " << i;
    }
}

TEST(RngExact, BoundedUniformMatchesStdUniformRealDistribution)
{
    Rng rng(7);
    std::mt19937_64 ref = referenceEngine(7);
    const double lo[] = {-3.0, 0.0, 0.8, 1e-9, -1e6};
    const double hi[] = {4.5, 1.6, 1.6, 2e-9, 1e6};
    for (int i = 0; i < 200000; ++i) {
        const int b = i % 5;
        std::uniform_real_distribution<double> dist(lo[b], hi[b]);
        const double expected = dist(ref);
        ASSERT_EQ(rng.uniform(lo[b], hi[b]), expected) << "draw " << i;
    }
}

TEST(RngExact, NormalMatchesFreshStdNormalDistribution)
{
    Rng rng(42);
    std::mt19937_64 ref = referenceEngine(42);
    for (int i = 0; i < 200000; ++i) {
        // Fresh distribution per draw: the polar method's cached second
        // deviate is discarded, exactly as Rng::normal always behaved.
        std::normal_distribution<double> dist(1.5, 0.25);
        const double expected = dist(ref);
        ASSERT_EQ(rng.normal(1.5, 0.25), expected) << "draw " << i;
    }
}

TEST(RngExact, LognormalMatchesFreshStdLognormalDistribution)
{
    Rng rng(99);
    std::mt19937_64 ref = referenceEngine(99);
    for (int i = 0; i < 200000; ++i) {
        std::lognormal_distribution<double> dist(std::log(12.0), 0.6);
        const double expected = dist(ref);
        ASSERT_EQ(rng.lognormal(12.0, 0.6), expected) << "draw " << i;
    }
}

TEST(RngExact, LogMedianLognormalMatchesFreshStdLognormalDistribution)
{
    Rng rng(1234);
    std::mt19937_64 ref = referenceEngine(1234);
    const double log_median = std::log(3500.0);
    for (int i = 0; i < 200000; ++i) {
        std::lognormal_distribution<double> dist(log_median, 1.1);
        const double expected = dist(ref);
        ASSERT_EQ(rng.lognormalFromLogMedian(log_median, 1.1), expected)
            << "draw " << i;
    }
}

TEST(RngExact, ExponentialMatchesFreshStdExponentialDistribution)
{
    Rng rng(777);
    std::mt19937_64 ref = referenceEngine(777);
    for (int i = 0; i < 200000; ++i) {
        std::exponential_distribution<double> dist(1.0 / 12000.0);
        const double expected = dist(ref);
        ASSERT_EQ(rng.exponential(12000.0), expected) << "draw " << i;
    }
}

TEST(RngExact, InterleavedKindsStayInLockstep)
{
    // Mixing draw kinds must keep both streams aligned: each helper has
    // to consume exactly as many raw engine words as its std original.
    Rng rng(31337);
    std::mt19937_64 ref = referenceEngine(31337);
    Rng chooser(1);
    for (int i = 0; i < 100000; ++i) {
        switch (chooser() % 5) {
          case 0: {
            std::uniform_real_distribution<double> d(0.0, 1.0);
            ASSERT_EQ(rng.uniform(), d(ref)) << "draw " << i;
            break;
          }
          case 1: {
            std::uniform_real_distribution<double> d(-2.0, 9.0);
            ASSERT_EQ(rng.uniform(-2.0, 9.0), d(ref)) << "draw " << i;
            break;
          }
          case 2: {
            std::normal_distribution<double> d(0.0, 2.0);
            ASSERT_EQ(rng.normal(0.0, 2.0), d(ref)) << "draw " << i;
            break;
          }
          case 3: {
            std::lognormal_distribution<double> d(std::log(5.0), 0.4);
            ASSERT_EQ(rng.lognormal(5.0, 0.4), d(ref)) << "draw " << i;
            break;
          }
          default: {
            std::exponential_distribution<double> d(1.0 / 3.0);
            ASSERT_EQ(rng.exponential(3.0), d(ref)) << "draw " << i;
            break;
          }
        }
    }
}

#endif // __GLIBCXX__

// Mt64 vs std::mt19937_64 is a portable equality: the reference here is
// the standard's normative engine definition, not a libstdc++ detail,
// so these run on any standard library. Two million draws cover several
// thousand state refills on every dispatch path the host supports.
TEST(RngExact, Mt64MatchesStdMt19937_64RawDraws)
{
    const bigfish::simd::Tag previous = bigfish::simd::active();
    const bigfish::simd::Tag tags[] = {bigfish::simd::Tag::Scalar,
                                       bigfish::simd::Tag::Sse2,
                                       bigfish::simd::Tag::Avx2};
    for (const bigfish::simd::Tag want : tags) {
        const bigfish::simd::Tag got = bigfish::simd::setActive(want);
        bigfish::Mt64 engine(2022);
        std::mt19937_64 ref(2022);
        for (int i = 0; i < 2000000; ++i)
            ASSERT_EQ(engine(), ref())
                << "draw " << i << " under " << bigfish::simd::name(got);
    }
    bigfish::simd::setActive(previous);
}

TEST(RngExact, Mt64MatchesStdSeedingAndDistributionConsumption)
{
    // The seeding recurrence and min/max must match too, or std
    // distribution templates would consume the stream differently.
    static_assert(bigfish::Mt64::min() == std::mt19937_64::min());
    static_assert(bigfish::Mt64::max() == std::mt19937_64::max());
    bigfish::Mt64 engine(0); // Zero seed exercises the seeding fixup path.
    std::mt19937_64 ref(0);
    for (int i = 0; i < 5000; ++i) {
        std::uniform_int_distribution<std::int64_t> dist(-17, 4000);
        const std::int64_t expected = dist(ref);
        std::uniform_int_distribution<std::int64_t> mine(-17, 4000);
        ASSERT_EQ(mine(engine), expected) << "draw " << i;
    }
}

TEST(RngExact, UniformStaysInHalfOpenUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngExact, HelpersAreDeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.uniform(), b.uniform());
        ASSERT_EQ(a.normal(3.0, 0.5), b.normal(3.0, 0.5));
        ASSERT_EQ(a.lognormal(10.0, 0.9), b.lognormal(10.0, 0.9));
        ASSERT_EQ(a.exponential(250.0), b.exponential(250.0));
        ASSERT_EQ(a.poisson(4.2), b.poisson(4.2));
    }
}

} // namespace
