/**
 * @file
 * Unit and property tests for the timer models of Section 6.1.
 *
 * Key invariants: monotonicity (all timers), determinism between resets,
 * quantization bounds, Chrome's jitter bound |T_secure - T_real| < 2A,
 * and the randomized timer's threshold-bounded lag.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "timers/timer.hh"

namespace bigfish::timers {
namespace {

/** All TimerSpecs under test, instantiated per test. */
std::vector<TimerSpec>
allSpecs()
{
    return {
        TimerSpec::precise(),
        TimerSpec::quantized(100 * kMsec),
        TimerSpec::quantized(kMsec),
        TimerSpec::jittered(100 * kUsec),
        TimerSpec::jittered(kMsec),
        TimerSpec::randomizedDefense(),
    };
}

class AllTimersTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    std::unique_ptr<TimerModel> makeTimer(std::uint64_t seed = 99)
    {
        return allSpecs()[GetParam()].make(seed);
    }
};

TEST_P(AllTimersTest, MonotoneNonDecreasing)
{
    auto timer = makeTimer();
    TimeNs prev = timer->observe(0);
    for (TimeNs t = 0; t < 400 * kMsec; t += 137 * kUsec) {
        const TimeNs now = timer->observe(t);
        EXPECT_GE(now, prev) << "at t=" << t;
        prev = now;
    }
}

TEST_P(AllTimersTest, DeterministicForSameRealTime)
{
    auto timer = makeTimer();
    // Query out of order and repeatedly: answers must be consistent.
    const TimeNs a1 = timer->observe(50 * kMsec);
    const TimeNs b1 = timer->observe(120 * kMsec);
    const TimeNs a2 = timer->observe(50 * kMsec);
    const TimeNs b2 = timer->observe(120 * kMsec);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
}

TEST_P(AllTimersTest, NeverAheadByMoreThanTwoResolutions)
{
    // No secure timer should report a time from the future beyond its
    // own quantization/jitter allowance.
    auto timer = makeTimer();
    const TimeNs a = allSpecs()[GetParam()].resolution;
    for (TimeNs t = 0; t < 300 * kMsec; t += 113 * kUsec)
        EXPECT_LE(timer->observe(t), t + 2 * a);
}

INSTANTIATE_TEST_SUITE_P(Timers, AllTimersTest,
                         ::testing::Range<std::size_t>(0, 6));

TEST(PreciseTimer, IsIdentity)
{
    PreciseTimer timer;
    for (TimeNs t : {TimeNs{0}, kUsec, 123 * kMsec, 7 * kSec})
        EXPECT_EQ(timer.observe(t), t);
}

TEST(QuantizedTimer, FloorsToResolution)
{
    QuantizedTimer timer(100 * kMsec);
    EXPECT_EQ(timer.observe(0), 0);
    EXPECT_EQ(timer.observe(99 * kMsec), 0);
    EXPECT_EQ(timer.observe(100 * kMsec), 100 * kMsec);
    EXPECT_EQ(timer.observe(250 * kMsec), 200 * kMsec);
}

TEST(QuantizedTimer, NeverExceedsRealTime)
{
    QuantizedTimer timer(kMsec);
    for (TimeNs t = 0; t < 50 * kMsec; t += 321 * kUsec) {
        EXPECT_LE(timer.observe(t), t);
        EXPECT_GT(timer.observe(t), t - kMsec);
    }
}

TEST(JitteredTimer, WithinPaperBound)
{
    // Paper: since e is 0 or A, |T_secure - T_real| < 2A.
    const TimeNs a = 100 * kUsec;
    JitteredTimer timer(a, 42);
    for (TimeNs t = 0; t < 100 * kMsec; t += 37 * kUsec) {
        const TimeNs diff = timer.observe(t) - t;
        EXPECT_LT(std::abs(diff), 2 * a);
    }
}

TEST(JitteredTimer, ActuallyJitters)
{
    const TimeNs a = 100 * kUsec;
    JitteredTimer timer(a, 42);
    // Over many quanta both e = 0 and e = A must occur.
    bool saw_up = false, saw_down = false;
    for (TimeNs t = 0; t < 100 * kMsec; t += a) {
        const TimeNs quantized = (t / a) * a;
        if (timer.observe(t) == quantized)
            saw_down = true;
        else if (timer.observe(t) == quantized + a)
            saw_up = true;
    }
    EXPECT_TRUE(saw_up);
    EXPECT_TRUE(saw_down);
}

TEST(JitteredTimer, SeedChangesJitterPattern)
{
    const TimeNs a = 100 * kUsec;
    JitteredTimer t1(a, 1), t2(a, 2);
    int diff = 0;
    for (TimeNs t = 0; t < 100 * kMsec; t += a)
        if (t1.observe(t) != t2.observe(t))
            ++diff;
    EXPECT_GT(diff, 100); // Roughly half of 1000 quanta.
}

TEST(RandomizedTimer, LagBoundedByThreshold)
{
    RandomizedTimerParams params;
    RandomizedTimer timer(params, 7);
    for (TimeNs t = 0; t < 2 * kSec; t += 613 * kUsec) {
        const TimeNs lag = t - timer.observe(t);
        EXPECT_GE(lag, 0) << "timer ran ahead of real time";
        // One quantum of slack on top of the threshold: the catch-up
        // decision is made at quantum boundaries.
        EXPECT_LE(lag, params.threshold + params.resolution);
    }
}

TEST(RandomizedTimer, ProducesIrregularIncrements)
{
    RandomizedTimer timer({}, 11);
    std::vector<TimeNs> increments;
    TimeNs prev = timer.observe(0);
    for (TimeNs t = kMsec; t < kSec; t += kMsec) {
        const TimeNs now = timer.observe(t);
        if (now != prev)
            increments.push_back(now - prev);
        prev = now;
    }
    ASSERT_GT(increments.size(), 5u);
    // Increments should vary (beta is drawn uniformly in [5,25]).
    std::set<TimeNs> distinct(increments.begin(), increments.end());
    EXPECT_GT(distinct.size(), 3u);
}

TEST(RandomizedTimer, ResetChangesRealization)
{
    RandomizedTimer timer({}, 3);
    const TimeNs before = timer.observe(500 * kMsec);
    timer.reset(4);
    const TimeNs after = timer.observe(500 * kMsec);
    // Different seeds almost surely give different update schedules.
    EXPECT_NE(before, after);
}

TEST(RandomizedTimer, SameSeedSameRealization)
{
    RandomizedTimer a({}, 5);
    RandomizedTimer b({}, 5);
    for (TimeNs t = 0; t < kSec; t += 13 * kMsec)
        EXPECT_EQ(a.observe(t), b.observe(t));
}

TEST(TimerSpec, FactoryProducesNamedTimers)
{
    EXPECT_EQ(TimerSpec::precise().make(1)->name(), "precise");
    EXPECT_EQ(TimerSpec::quantized(kMsec).make(1)->name(), "quantized");
    EXPECT_EQ(TimerSpec::jittered(kMsec).make(1)->name(), "jittered");
    EXPECT_EQ(TimerSpec::randomizedDefense().make(1)->name(), "randomized");
}

TEST(TimerSpec, ResolutionPropagates)
{
    EXPECT_EQ(TimerSpec::quantized(7 * kMsec).make(1)->resolution(),
              7 * kMsec);
    EXPECT_EQ(TimerSpec::jittered(100 * kUsec).make(1)->resolution(),
              100 * kUsec);
}

} // namespace
} // namespace bigfish::timers
