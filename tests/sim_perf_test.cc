/**
 * @file
 * Determinism tests for the simulator perf counters (sim/perf.hh,
 * DESIGN.md §13): for a pinned spec the counts are exact constants,
 * identical at every thread count and SIMD dispatch tag, and
 * journal-replayed cells report zero because the counters measure work
 * performed, exactly like cpuSeconds.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "base/simd.hh"
#include "base/thread_pool.hh"
#include "core/checkpoint.hh"
#include "core/collector.hh"
#include "web/catalog.hh"

namespace bigfish::core {
namespace {

/** The pinned spec: every expected count below belongs to exactly this
 *  configuration. Touching any field invalidates the constants. */
CollectionConfig
pinnedConfig()
{
    CollectionConfig config;
    config.seed = 2022;
    config.browser.traceDuration = 2 * kSec;
    return config;
}

constexpr int kSites = 3;
constexpr int kRuns = 2;
constexpr std::uint64_t kCatalogSeed = 7;

/** One full closed-world sweep of the pinned spec, counters out. */
sim::PerfCounters
sweepCounters()
{
    const CollectionConfig config = pinnedConfig();
    const TraceCollector collector(config);
    const web::SiteCatalog catalog(kSites, kCatalogSeed);
    const attack::AttackerKind attackers[] = {config.attacker};
    sim::PerfCounters perf;
    std::vector<CollectionStats> stats;
    const auto sets = collector.collectClosedWorldMulti(
        catalog, kRuns, attackers, &stats, &perf);
    EXPECT_TRUE(sets.isOk()) << sets.status().message();
    return perf;
}

/** Restores the dispatch Tag a test swept away from. */
class TagGuard
{
  public:
    TagGuard() : saved_(simd::active()) {}
    ~TagGuard() { simd::setActive(saved_); }

  private:
    simd::Tag saved_;
};

TEST(SimPerfCounters, PinnedSpecProducesExactCounts)
{
    // The counters are pure functions of the work content, so for the
    // pinned spec they are plain constants — any drift means simulation
    // behavior changed and the bit-identity baseline must be re-recorded.
    const sim::PerfCounters perf = sweepCounters();
    EXPECT_EQ(perf.eventsSimulated, 240551);
    EXPECT_EQ(perf.interruptsSynthesized, 236982);
    EXPECT_EQ(perf.allocations, 36);
    EXPECT_EQ(perf.bytesSorted, 5687880);
    EXPECT_FALSE(perf.empty());
}

TEST(SimPerfCounters, CountsIdenticalAcrossThreadCounts)
{
    const sim::PerfCounters base = sweepCounters();
    for (const int threads : {1, 4, 8}) {
        setGlobalThreads(threads);
        const sim::PerfCounters perf = sweepCounters();
        EXPECT_EQ(perf.eventsSimulated, base.eventsSimulated) << threads;
        EXPECT_EQ(perf.interruptsSynthesized, base.interruptsSynthesized)
            << threads;
        EXPECT_EQ(perf.allocations, base.allocations) << threads;
        EXPECT_EQ(perf.bytesSorted, base.bytesSorted) << threads;
    }
    setGlobalThreads(0); // Back to the hardware default.
}

TEST(SimPerfCounters, CountsIdenticalAcrossSimdTags)
{
    TagGuard guard;
    simd::setActive(simd::Tag::Scalar);
    const sim::PerfCounters base = sweepCounters();
    for (const simd::Tag tag :
         {simd::Tag::Scalar, simd::Tag::Sse2, simd::Tag::Avx2}) {
        if (!simd::supported(tag))
            continue;
        simd::setActive(tag);
        const sim::PerfCounters perf = sweepCounters();
        EXPECT_EQ(perf.eventsSimulated, base.eventsSimulated);
        EXPECT_EQ(perf.interruptsSynthesized, base.interruptsSynthesized);
        EXPECT_EQ(perf.allocations, base.allocations);
        EXPECT_EQ(perf.bytesSorted, base.bytesSorted);
    }
}

TEST(SimPerfCounters, JournalReplayedCellsReportZero)
{
    // Counters measure work *performed*: a sweep fully served from the
    // checkpoint journal does no simulation and must report zero, so
    // the --explain table attributes replays honestly (mirrors how a
    // replayed stage's cpuSeconds is the replay cost, not the original).
    namespace fs = std::filesystem;
    const std::string dir =
        testing::TempDir() + "bf_sim_perf_checkpoint";
    fs::remove_all(dir);
    fs::create_directories(dir);

    const CollectionConfig config = pinnedConfig();
    const web::SiteCatalog catalog(kSites, kCatalogSeed);
    const attack::AttackerKind attackers[] = {config.attacker};
    const std::uint64_t fp = collectionFingerprint(
        config, kCatalogSeed, kSites, 0, attackers);

    auto first = CheckpointJournal::open(dir, fp, config.faults);
    ASSERT_TRUE(first.isOk()) << first.status().message();
    TraceCollector cold(config);
    cold.setCheckpoint(first.value().get());
    sim::PerfCounters cold_perf;
    ASSERT_TRUE(cold
                    .collectClosedWorldMulti(catalog, kRuns, attackers,
                                             nullptr, &cold_perf)
                    .isOk());
    EXPECT_FALSE(cold_perf.empty());

    auto second = CheckpointJournal::open(dir, fp, config.faults);
    ASSERT_TRUE(second.isOk()) << second.status().message();
    ASSERT_EQ(second.value()->cellCount(),
              static_cast<std::size_t>(kSites * kRuns));
    TraceCollector warm(config);
    warm.setCheckpoint(second.value().get());
    sim::PerfCounters warm_perf;
    ASSERT_TRUE(warm
                    .collectClosedWorldMulti(catalog, kRuns, attackers,
                                             nullptr, &warm_perf)
                    .isOk());
    EXPECT_TRUE(warm_perf.empty());
    fs::remove_all(dir);
}

TEST(SimPerfCounters, AccumulationArithmetic)
{
    sim::PerfCounters a;
    a.eventsSimulated = 10;
    a.interruptsSynthesized = 7;
    a.allocations = 3;
    a.bytesSorted = 640;
    sim::PerfCounters b;
    b.eventsSimulated = 5;
    b.bytesSorted = 60;
    const sim::PerfCounters sum = a + b;
    EXPECT_EQ(sum.eventsSimulated, 15);
    EXPECT_EQ(sum.interruptsSynthesized, 7);
    EXPECT_EQ(sum.allocations, 3);
    EXPECT_EQ(sum.bytesSorted, 700);
    EXPECT_TRUE(sim::PerfCounters{}.empty());
    EXPECT_FALSE(sum.empty());
}

} // namespace
} // namespace bigfish::core
