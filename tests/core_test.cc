/**
 * @file
 * Unit tests for src/core: configuration plumbing, deterministic trace
 * collection, dataset assembly, and the fingerprinting pipeline.
 */

#include <gtest/gtest.h>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "core/presets.hh"
#include "stats/descriptive.hh"

namespace bigfish::core {
namespace {

TEST(CollectionConfig, EffectiveDefaults)
{
    CollectionConfig config;
    EXPECT_EQ(config.effectivePeriod(), 5 * kMsec);
    EXPECT_EQ(config.effectiveTimer().kind, timers::TimerKind::Jittered);
}

TEST(CollectionConfig, OverridesWin)
{
    CollectionConfig config;
    config.period = 100 * kMsec;
    config.timerOverride = timers::TimerSpec::randomizedDefense();
    EXPECT_EQ(config.effectivePeriod(), 100 * kMsec);
    EXPECT_EQ(config.effectiveTimer().kind, timers::TimerKind::Randomized);
}

TEST(TraceCollector, DeterministicPerSeed)
{
    CollectionConfig config;
    config.seed = 77;
    const TraceCollector c1(config), c2(config);
    const auto site = web::amazonSignature(3);
    const auto a = c1.collectOneOrDie(site, 5);
    const auto b = c2.collectOneOrDie(site, 5);
    ASSERT_EQ(a.counts.size(), b.counts.size());
    for (std::size_t i = 0; i < a.counts.size(); ++i)
        EXPECT_DOUBLE_EQ(a.counts[i], b.counts[i]);
}

TEST(TraceCollector, RunsDiffer)
{
    CollectionConfig config;
    const TraceCollector collector(config);
    const auto site = web::amazonSignature(3);
    const auto a = collector.collectOneOrDie(site, 0);
    const auto b = collector.collectOneOrDie(site, 1);
    double diff = 0.0;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        diff += std::abs(a.counts[i] - b.counts[i]);
    EXPECT_GT(diff, 100.0);
}

TEST(TraceCollector, LabelsFollowSiteIds)
{
    CollectionConfig config;
    const TraceCollector collector(config);
    const web::SiteCatalog catalog(4, 7);
    const auto set = collector.collectClosedWorldOrDie(catalog, 3);
    ASSERT_EQ(set.size(), 12u);
    EXPECT_EQ(set.traces[0].label, 0);
    EXPECT_EQ(set.traces[11].label, 3);
    EXPECT_EQ(set.numClasses(), 4);
}

TEST(TraceCollector, OpenWorldLabeledAsCatchAll)
{
    CollectionConfig config;
    const TraceCollector collector(config);
    const web::SiteCatalog catalog(4, 7);
    const auto set = collector.collectOpenWorldOrDie(catalog, 5, 4);
    ASSERT_EQ(set.size(), 5u);
    for (const auto &trace : set.traces)
        EXPECT_EQ(trace.label, 4);
    // Traces come from distinct one-off sites and thus differ.
    double diff = 0.0;
    for (std::size_t i = 0;
         i < std::min(set.traces[0].size(), set.traces[1].size()); ++i)
        diff += std::abs(set.traces[0].counts[i] - set.traces[1].counts[i]);
    EXPECT_GT(diff, 100.0);
}

TEST(TraceCollector, TimelineExposedForInstrumentation)
{
    CollectionConfig config;
    const TraceCollector collector(config);
    const auto site = web::nytimesSignature(0);
    const auto timeline = collector.synthesizeTimeline(site, 0);
    EXPECT_EQ(timeline.duration, config.browser.traceDuration);
    EXPECT_FALSE(timeline.stolen.empty());
    // The exposed timeline is the one the attacker measured: a second
    // call reproduces it exactly.
    const auto again = collector.synthesizeTimeline(site, 0);
    ASSERT_EQ(timeline.stolen.size(), again.stolen.size());
    EXPECT_EQ(timeline.stolen[5].arrival, again.stolen[5].arrival);
}

TEST(TraceCollector, NoiseCountermeasureChangesTraces)
{
    CollectionConfig plain;
    CollectionConfig noisy = plain;
    noisy.spuriousInterruptNoise = true;
    const auto site = web::amazonSignature(1);
    const auto a = TraceCollector(plain).collectOneOrDie(site, 0);
    const auto b = TraceCollector(noisy).collectOneOrDie(site, 0);
    // Under injected interrupts the attacker completes fewer iterations.
    EXPECT_LT(stats::mean(b.counts), stats::mean(a.counts));
}

TEST(TraceCollector, CacheSweepSlowsOnlySweepAttacker)
{
    CollectionConfig loop_cfg;
    loop_cfg.attacker = attack::AttackerKind::LoopCounting;
    CollectionConfig loop_noise = loop_cfg;
    loop_noise.cacheSweepNoise = true;

    CollectionConfig sweep_cfg;
    sweep_cfg.attacker = attack::AttackerKind::SweepCounting;
    CollectionConfig sweep_noise = sweep_cfg;
    sweep_noise.cacheSweepNoise = true;

    const auto site = web::nytimesSignature(0);
    const double loop_drop =
        stats::mean(TraceCollector(loop_cfg).collectOneOrDie(site, 0).counts) /
        std::max(1.0, stats::mean(TraceCollector(loop_noise)
                                      .collectOneOrDie(site, 0)
                                      .counts));
    const double sweep_drop =
        stats::mean(TraceCollector(sweep_cfg).collectOneOrDie(site, 0).counts) /
        std::max(1.0, stats::mean(TraceCollector(sweep_noise)
                                      .collectOneOrDie(site, 0)
                                      .counts));
    // The sweeping attacker's iterations slow under full-LLC occupancy
    // (prefetch-amortized misses on every victim-touched line); the
    // loop attacker barely notices.
    EXPECT_GT(sweep_drop, 1.04);
    EXPECT_LT(loop_drop, 1.03);
    EXPECT_GT(sweep_drop, loop_drop);
}

TEST(ToDataset, StandardizesFeatures)
{
    attack::TraceSet set;
    attack::Trace t;
    t.label = 0;
    t.counts.assign(200, 100.0);
    t.counts[50] = 50.0;
    set.add(t);
    const auto data = toDataset(set, 100, 2);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_NEAR(stats::mean(data.features[0]), 0.0, 1e-9);
}

TEST(ToDataset, EmptyTraceSetYieldsEmptyDatasetWithDeclaredClasses)
{
    const attack::TraceSet set;
    const auto data = toDataset(set, 64, 5);
    EXPECT_EQ(data.size(), 0u);
    EXPECT_TRUE(data.features.empty());
    EXPECT_TRUE(data.labels.empty());
    // The declared class count survives even with no rows, so a
    // degraded-collection check can still reason about the world size.
    EXPECT_EQ(data.numClasses, 5);
}

TEST(ToDataset, FeatureLenLongerThanShortestTraceStillFixedWidth)
{
    // Interpolating resample: a trace with fewer periods than
    // feature_len buckets must still produce exactly feature_len values
    // per channel, never a ragged row.
    attack::TraceSet set;
    attack::Trace shorty;
    shorty.label = 0;
    shorty.counts = {90.0, 100.0, 95.0, 80.0, 100.0};
    set.add(shorty);
    attack::Trace longer;
    longer.label = 1;
    longer.counts.assign(500, 100.0);
    set.add(longer);
    const std::size_t feature_len = 64;
    const auto data = toDataset(set, feature_len, 2);
    ASSERT_EQ(data.size(), 2u);
    // Two channels (bucket mean + dip depth), concatenated.
    EXPECT_EQ(data.features[0].size(), 2 * feature_len);
    EXPECT_EQ(data.features[1].size(), 2 * feature_len);
    EXPECT_EQ(data.featureLen(), 2 * feature_len);
}

TEST(ToDataset, AllDroppedSiteLeavesGapInLabelsNotInRows)
{
    // Fault-degraded collection can silently drop every trace of one
    // site; the dataset must keep the surviving rows and cover the
    // absent class via the declared class count.
    attack::TraceSet set;
    for (int label : {0, 0, 2, 2}) {
        attack::Trace t;
        t.label = label;
        t.counts.assign(64, 100.0 + label);
        t.counts[10 + label] = 40.0;
        set.add(t);
    }
    const auto data = toDataset(set, 16, 3);
    ASSERT_EQ(data.size(), 4u);
    EXPECT_EQ(data.numClasses, 3);
    EXPECT_EQ(data.labels, (std::vector<Label>{0, 0, 2, 2}));
}

TEST(ToDataset, SingleClassInputsKeepDeclaredWorldSize)
{
    attack::TraceSet set;
    for (int i = 0; i < 3; ++i) {
        attack::Trace t;
        t.label = 0;
        t.counts.assign(128, 100.0);
        t.counts[20 * (i + 1)] = 55.0;
        set.add(t);
    }
    const auto data = toDataset(set, 32, 4);
    ASSERT_EQ(data.size(), 3u);
    for (const auto &label : data.labels)
        EXPECT_EQ(label, 0);
    // num_classes is a floor, not a measurement: the single surviving
    // class does not shrink the declared world.
    EXPECT_EQ(data.numClasses, 4);
}

TEST(Presets, Table1MatrixMatchesPaper)
{
    const auto rows = presets::table1Rows();
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows[0].name, "chrome/linux");
    EXPECT_EQ(rows[7].name, "tor/linux");
    // Tor rows must carry the 100 ms quantized timer and 50 s traces.
    EXPECT_EQ(rows[7].config.browser.timer.kind,
              timers::TimerKind::Quantized);
    EXPECT_EQ(rows[7].config.browser.traceDuration, 50 * kSec);
    // Windows rows run the Xeon workstation profile.
    EXPECT_EQ(rows[1].config.machine.os.name, "windows");
}

TEST(PresetsDeath, RejectsUnevaluatedCombinations)
{
    EXPECT_EXIT(presets::table1Row("safari", "windows"),
                ::testing::ExitedWithCode(1), "Safari");
    EXPECT_EXIT(presets::table1Row("tor", "macos"),
                ::testing::ExitedWithCode(1), "Tor");
    EXPECT_EXIT(presets::table1Row("opera", "linux"),
                ::testing::ExitedWithCode(1), "unknown browser");
}

TEST(Presets, Table2ConditionsToggleDefenses)
{
    const auto none = presets::table2Condition(
        "none", attack::AttackerKind::LoopCounting);
    EXPECT_FALSE(none.spuriousInterruptNoise);
    EXPECT_FALSE(none.cacheSweepNoise);
    const auto irq = presets::table2Condition(
        "interrupt", attack::AttackerKind::SweepCounting);
    EXPECT_TRUE(irq.spuriousInterruptNoise);
    EXPECT_EQ(irq.attacker, attack::AttackerKind::SweepCounting);
    const auto cache = presets::table2Condition(
        "cache-sweep", attack::AttackerKind::LoopCounting);
    EXPECT_TRUE(cache.cacheSweepNoise);
    const auto bg = presets::table2Condition(
        "background", attack::AttackerKind::LoopCounting);
    EXPECT_TRUE(bg.backgroundApps);
}

TEST(Presets, Table3LevelsAccumulate)
{
    const auto l0 = presets::table3Isolation(0);
    EXPECT_TRUE(l0.machine.frequencyScaling);
    EXPECT_FALSE(l0.machine.pinnedCores);
    const auto l2 = presets::table3Isolation(2);
    EXPECT_FALSE(l2.machine.frequencyScaling);
    EXPECT_TRUE(l2.machine.pinnedCores);
    EXPECT_EQ(l2.machine.routing, sim::IrqRoutingPolicy::Spread);
    const auto l4 = presets::table3Isolation(4);
    EXPECT_EQ(l4.machine.routing, sim::IrqRoutingPolicy::PinnedAway);
    EXPECT_TRUE(l4.machine.vmIsolation);
    // The Python attacker with a precise clock, as in the paper.
    EXPECT_EQ(l4.browser.timer.kind, timers::TimerKind::Precise);
}

TEST(Presets, Table4TimersAndPeriods)
{
    const auto jitter = presets::table4Timer("jittered", 5);
    ASSERT_TRUE(jitter.timerOverride.has_value());
    EXPECT_EQ(jitter.timerOverride->kind, timers::TimerKind::Jittered);
    EXPECT_EQ(jitter.effectivePeriod(), 5 * kMsec);
    const auto rand500 = presets::table4Timer("randomized", 500);
    EXPECT_EQ(rand500.timerOverride->kind, timers::TimerKind::Randomized);
    EXPECT_EQ(rand500.effectivePeriod(), 500 * kMsec);
}

TEST(Pipeline, EndToEndBeatsChanceClearly)
{
    CollectionConfig config;
    config.seed = 5;
    PipelineConfig pipeline;
    pipeline.numSites = 5;
    pipeline.tracesPerSite = 8;
    pipeline.featureLen = 192;
    pipeline.eval.folds = 4;
    pipeline.factory = ml::knnFactory(3); // Fast and adequate here.
    const auto result = runFingerprintingOrDie(config, pipeline);
    EXPECT_GT(result.closedWorld.top1Mean, 0.6); // Chance is 0.2.
    EXPECT_FALSE(result.hasOpenWorld);
}

TEST(Pipeline, OpenWorldProducesMetrics)
{
    CollectionConfig config;
    config.seed = 6;
    PipelineConfig pipeline;
    pipeline.numSites = 4;
    pipeline.tracesPerSite = 8;
    pipeline.openWorldExtra = 16;
    pipeline.featureLen = 192;
    pipeline.eval.folds = 4;
    pipeline.factory = ml::knnFactory(3);
    const auto result = runFingerprintingOrDie(config, pipeline);
    ASSERT_TRUE(result.hasOpenWorld);
    EXPECT_GT(result.openWorld.openWorld.combinedAccuracy, 0.5);
    EXPECT_GT(result.openWorld.openWorld.sensitiveAccuracy, 0.0);
}

} // namespace
} // namespace bigfish::core
