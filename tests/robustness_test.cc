/**
 * @file
 * Corrupted-input robustness tests for the persistence layers.
 *
 * Part 1 (trace files): builds a corpus of ~50 mutated trace files
 * (torn writes, bit flips, wrong headers, NaN counts, out-of-range ids,
 * garbage rows) and checks the error contract: the strict reader
 * reports a Status instead of terminating, and the lenient reader never
 * fails on content while keeping its repair accounting exactly
 * consistent.
 *
 * Part 2 (checkpoint journals): pins the `--resume` bit-identity
 * contract — a journal truncated at ANY byte offset (kill -9 at record
 * K) repairs cleanly and the resumed collection produces bit-identical
 * traces and artifacts to an uninterrupted run; CRC-failed middle
 * records are dropped without losing their neighbors; IO fault
 * injection (crash-after-N, torn write, record corruption) exercises
 * the same repair paths deterministically.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/trace_io.hh"
#include "base/rng.hh"
#include "core/checkpoint.hh"
#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ml/classifier.hh"

namespace bigfish::attack {
namespace {

TraceSet
exampleSet()
{
    TraceSet set;
    Rng rng(99);
    for (int t = 0; t < 6; ++t) {
        Trace trace;
        trace.siteId = t % 3;
        trace.label = t % 3;
        trace.period = 5'000'000;
        trace.attacker = "loop-counting";
        for (int i = 0; i < 40; ++i)
            trace.counts.push_back(
                20000.0 + static_cast<double>(rng.uniformInt(0, 4999)));
        set.add(trace);
    }
    return set;
}

std::string
baseText()
{
    std::stringstream out;
    EXPECT_TRUE(writeTraces(out, exampleSet()).isOk());
    return out.str();
}

/** ~50 deterministic corruptions of one valid trace file. */
std::vector<std::string>
mutatedCorpus()
{
    const std::string base = baseText();
    std::vector<std::string> files;
    Rng rng(4242);

    // Torn writes: the file cut at an arbitrary byte.
    for (int i = 0; i < 14; ++i) {
        const auto len = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(base.size()) - 1));
        files.push_back(base.substr(0, len));
    }

    // Disk corruption: one flipped bit somewhere in the file.
    for (int i = 0; i < 14; ++i) {
        std::string s = base;
        const auto pos = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(s.size()) - 1));
        s[pos] = static_cast<char>(s[pos] ^
                                   (1u << rng.uniformInt(0, 7)));
        files.push_back(s);
    }

    // Wrong or missing headers.
    files.push_back("");
    files.push_back("\n");
    files.push_back("junk\n1,1,5000000,loop,10,20\n");
    files.push_back("# bigfish-traces v2\n1,1,5000000,loop,10,20\n");
    files.push_back("# bigfish-weights v1\n1 1 0.5\n");
    files.push_back(base.substr(base.find('\n') + 1)); // Header removed.

    // Non-finite counts.
    files.push_back(base + "1,1,5000000,loop,nan,20\n");
    files.push_back(base + "1,1,5000000,loop,inf\n");
    files.push_back(base + "2,2,5000000,loop,-inf,3\n");
    files.push_back(base + "0,0,5000000,loop,1,nan(0x7)\n");
    files.push_back(base + "1,1,5000000,loop,10,infinity\n");
    files.push_back(base + "1,1,5000000,loop,-nan\n");

    // Out-of-range ids and periods.
    files.push_back(base + "20000001,1,5000000,loop,10\n");
    files.push_back(base + "-5,1,5000000,loop,10\n");
    files.push_back(base + "1,20000001,5000000,loop,10\n");
    files.push_back(base + "1,1,-5,loop,10\n");
    files.push_back(base + "1,1,0,loop,10\n");

    // Short and garbage rows.
    files.push_back(base + "1,1\n");
    files.push_back(base + "1,1,5000000,loop\n");
    files.push_back(base + "x,y,z\n");
    files.push_back(base + "1,1,zzz,loop,10\n");
    files.push_back(base + ",,,,\n");
    files.push_back(base + "1,1,5000000,loop,12,abc\n");

    return files;
}

void
expectConsistentStats(const TraceRepairStats &stats,
                      const TraceSet &traces)
{
    EXPECT_EQ(stats.rowsKept + stats.rowsDropped, stats.rowsTotal);
    EXPECT_EQ(traces.size(), stats.rowsKept);
    EXPECT_EQ(stats.shortRows + stats.badNumberRows + stats.overlongRows +
                  stats.outOfRangeRows + stats.nonFiniteRows,
              stats.rowsDropped);
}

TEST(RobustCorpus, FiftyMutatedFilesNeverAbort)
{
    const auto files = mutatedCorpus();
    ASSERT_GE(files.size(), 50u);
    const std::string dir = ::testing::TempDir();
    int idx = 0;
    for (const std::string &content : files) {
        const std::string path =
            dir + "/bf_corrupt_" + std::to_string(idx++) + ".csv";
        {
            std::ofstream out(path);
            ASSERT_TRUE(out.good());
            out << content;
        }

        // Strict read: failing is fine, terminating is not; errors must
        // carry a message.
        const auto strict = loadTraces(path);
        if (!strict.isOk()) {
            EXPECT_FALSE(strict.status().message().empty())
                << "corpus file " << idx;
        }

        // Lenient read: cannot fail on content, and the repair
        // accounting must add up exactly.
        const auto lenient = loadTracesLenient(path);
        ASSERT_TRUE(lenient.isOk()) << "corpus file " << idx;
        expectConsistentStats(lenient.value().stats,
                              lenient.value().traces);

        // A strict success must agree with the lenient reader.
        if (strict.isOk()) {
            EXPECT_EQ(strict.value().size(),
                      lenient.value().traces.size())
                << "corpus file " << idx;
        }
    }
}

TEST(RobustCorpus, LenientAccountingIsExact)
{
    std::stringstream in;
    in << "# bigfish-traces v1\n"
       << "0,0,5000000,loop,10,20,30\n"          // kept
       << "# a comment\n"                        // ignored
       << "1,1,5000000,loop,11,21,31\n"          // kept
       << "2,2\n"                                // short
       << "x,3,5000000,loop,12\n"                // bad number
       << "3,3,5000000,loop,nan\n"               // non-finite
       << "20000001,4,5000000,loop,13\n"         // out-of-range
       << "\n"                                   // ignored
       << "4,4,5000000,loop,14,24\n";            // kept
    const LenientTraces result = readTracesLenient(in);
    EXPECT_TRUE(result.stats.headerOk);
    EXPECT_EQ(result.stats.rowsTotal, 7u);
    EXPECT_EQ(result.stats.rowsKept, 3u);
    EXPECT_EQ(result.stats.rowsDropped, 4u);
    EXPECT_EQ(result.stats.shortRows, 1u);
    EXPECT_EQ(result.stats.badNumberRows, 1u);
    EXPECT_EQ(result.stats.nonFiniteRows, 1u);
    EXPECT_EQ(result.stats.outOfRangeRows, 1u);
    EXPECT_EQ(result.stats.overlongRows, 0u);
    EXPECT_EQ(result.traces.size(), 3u);
    EXPECT_EQ(result.traces.traces[2].counts.size(), 2u);
    expectConsistentStats(result.stats, result.traces);
    EXPECT_NE(result.stats.summary().find("kept 3/7"),
              std::string::npos);
}

TEST(RobustCorpus, OverlongRowIsRejectedNotStored)
{
    std::string row = "1,1,5000000,loop";
    row.reserve(2 * kMaxCountsPerRow + 32);
    for (std::size_t i = 0; i <= kMaxCountsPerRow; ++i)
        row += ",1";
    std::stringstream strict_in;
    strict_in << "# bigfish-traces v1\n" << row << "\n";
    const auto strict = readTraces(strict_in);
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.status().code(), ErrorCode::OutOfRange);

    std::stringstream lenient_in;
    lenient_in << "# bigfish-traces v1\n"
               << row << "\n"
               << "1,1,5000000,loop,10\n";
    const LenientTraces result = readTracesLenient(lenient_in);
    EXPECT_EQ(result.stats.overlongRows, 1u);
    EXPECT_EQ(result.traces.size(), 1u);
    expectConsistentStats(result.stats, result.traces);
}

TEST(RobustCorpus, LenientParsesHeaderlessData)
{
    std::stringstream in;
    in << "1,1,5000000,loop,10,20\n"
       << "2,2,5000000,loop,11,21\n";
    const LenientTraces result = readTracesLenient(in);
    EXPECT_FALSE(result.stats.headerOk);
    EXPECT_EQ(result.stats.headerFound, "1,1,5000000,loop,10,20");
    EXPECT_EQ(result.traces.size(), 2u);
    expectConsistentStats(result.stats, result.traces);
}

TEST(RobustCorpus, VersionMismatchNamesFoundHeader)
{
    std::stringstream in;
    in << "# bigfish-traces v2\n1,1,5000000,loop,10\n";
    const auto result = readTraces(in);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("unsupported"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("# bigfish-traces v2"),
              std::string::npos);
}

TEST(RobustCorpus, MissingFileIsAnIoError)
{
    const auto strict = loadTraces("/nonexistent/bigfish/traces.csv");
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.status().code(), ErrorCode::IoError);
    const auto lenient =
        loadTracesLenient("/nonexistent/bigfish/traces.csv");
    ASSERT_FALSE(lenient.isOk());
    EXPECT_EQ(lenient.status().code(), ErrorCode::IoError);
}

TEST(RobustCorpus, DiskRoundTripPreservesTraces)
{
    const TraceSet set = exampleSet();
    const std::string path = ::testing::TempDir() + "/bf_roundtrip.csv";
    ASSERT_TRUE(saveTraces(path, set).isOk());
    const auto loaded = loadTraces(path);
    ASSERT_TRUE(loaded.isOk());
    ASSERT_EQ(loaded.value().size(), set.size());
    for (std::size_t t = 0; t < set.size(); ++t) {
        const Trace &a = set.traces[t];
        const Trace &b = loaded.value().traces[t];
        EXPECT_EQ(a.siteId, b.siteId);
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.period, b.period);
        ASSERT_EQ(a.counts.size(), b.counts.size());
        for (std::size_t i = 0; i < a.counts.size(); ++i)
            EXPECT_DOUBLE_EQ(a.counts[i], b.counts[i]);
    }
}

} // namespace
} // namespace bigfish::attack

namespace bigfish::core {
namespace {

using attack::Trace;

std::string
journalDir(const std::string &leaf)
{
    // Fresh per-test directory: journals persist across test processes
    // by design, so a stale one from an earlier run must not leak in.
    const std::string dir = testing::TempDir() + "bf_checkpoint_" + leaf;
    std::error_code ignored;
    std::filesystem::remove_all(dir, ignored);
    return dir;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(out.write(
        bytes.data(), static_cast<std::streamsize>(bytes.size()))))
        << path;
}

/** A deterministic trace with "awkward" doubles (hexfloat territory). */
Trace
exampleTrace(std::uint64_t seed, int n = 12)
{
    Rng rng(seed);
    Trace trace;
    trace.siteId = static_cast<SiteId>(seed % 7);
    trace.label = static_cast<Label>(seed % 5);
    trace.period = 5'000'000;
    trace.attacker = (seed % 2) ? "loop-counting" : "sweep-counting";
    for (int i = 0; i < n; ++i) {
        // Irrational-ish values: exercises exact double round-tripping.
        trace.counts.push_back(rng.uniform() * 1e5 / 3.0);
        trace.wallTimes.push_back(
            5'000'000 + rng.uniformInt(-40000, 40000));
    }
    return trace;
}

/** One journal cell: two attacker slots, optionally one dropped. */
std::vector<Result<Trace>>
exampleCell(std::uint64_t seed, bool with_drop = false)
{
    std::vector<Result<Trace>> cell;
    cell.emplace_back(exampleTrace(seed));
    if (with_drop)
        cell.emplace_back(
            dataError("trace truncated by fault injection"));
    else
        cell.emplace_back(exampleTrace(seed ^ 0xabcdef));
    return cell;
}

void
expectTracesBitIdentical(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.siteId, b.siteId);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.attacker, b.attacker);
    ASSERT_EQ(a.counts.size(), b.counts.size());
    for (std::size_t i = 0; i < a.counts.size(); ++i)
        EXPECT_EQ(a.counts[i], b.counts[i]) << "count " << i;
    ASSERT_EQ(a.wallTimes.size(), b.wallTimes.size());
    for (std::size_t i = 0; i < a.wallTimes.size(); ++i)
        EXPECT_EQ(a.wallTimes[i], b.wallTimes[i]) << "wall " << i;
}

void
expectCellsBitIdentical(const std::vector<Result<Trace>> &a,
                        const std::vector<Result<Trace>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isOk(), b[i].isOk()) << "slot " << i;
        if (a[i].isOk())
            expectTracesBitIdentical(a[i].value(), b[i].value());
        else {
            EXPECT_EQ(a[i].status().code(), b[i].status().code());
            EXPECT_EQ(a[i].status().message(), b[i].status().message());
        }
    }
}

TEST(CheckpointJournal, RoundTripsCellsIncludingDroppedTraces)
{
    const std::string dir = journalDir("roundtrip");
    const auto faults = sim::FaultConfig::none();
    auto journal = CheckpointJournal::open(dir, 0x1234, faults);
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    EXPECT_EQ(journal.value()->cellCount(), 0u);

    const auto cell_a = exampleCell(1);
    const auto cell_b = exampleCell(2, /*with_drop=*/true);
    ASSERT_TRUE(journal.value()
                    ->appendCell(kCheckpointClosedWorld, 0, 0, cell_a)
                    .isOk());
    ASSERT_TRUE(journal.value()
                    ->appendCell(kCheckpointOpenWorld, 3, 1, cell_b)
                    .isOk());

    // Same process: lookups hit the in-memory map.
    const auto hit =
        journal.value()->lookup(kCheckpointClosedWorld, 0, 0);
    ASSERT_TRUE(hit.has_value());
    expectCellsBitIdentical(*hit, cell_a);
    EXPECT_FALSE(
        journal.value()->lookup(kCheckpointClosedWorld, 0, 1).has_value());

    // Fresh process: everything replays from disk, bit-identically —
    // including the dropped slot's error code and message.
    journal = CheckpointJournal::open(dir, 0x1234, faults);
    ASSERT_TRUE(journal.isOk());
    EXPECT_EQ(journal.value()->cellCount(), 2u);
    EXPECT_FALSE(journal.value()->repairStats().repaired());
    const auto a = journal.value()->lookup(kCheckpointClosedWorld, 0, 0);
    const auto b = journal.value()->lookup(kCheckpointOpenWorld, 3, 1);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    expectCellsBitIdentical(*a, cell_a);
    expectCellsBitIdentical(*b, cell_b);
}

TEST(CheckpointJournal, FingerprintSeparatesTraceAffectingConfigs)
{
    const CollectionConfig base;
    const attack::AttackerKind one[] = {
        attack::AttackerKind::LoopCounting};
    const attack::AttackerKind two[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    const auto fp = [&](const CollectionConfig &c,
                        std::span<const attack::AttackerKind> kinds) {
        return collectionFingerprint(c, 7, 4, 8, kinds);
    };

    const std::uint64_t reference = fp(base, one);
    EXPECT_EQ(reference, fp(base, one)) << "fingerprint must be stable";

    CollectionConfig seeded = base;
    seeded.seed = base.seed + 1;
    EXPECT_NE(fp(seeded, one), reference);

    CollectionConfig browser = base;
    browser.browser = web::BrowserProfile::torBrowser();
    EXPECT_NE(fp(browser, one), reference);

    CollectionConfig machine = base;
    machine.machine = sim::MachineConfig::windowsWorkstation();
    EXPECT_NE(fp(machine, one), reference);

    CollectionConfig signal_faults = base;
    signal_faults.faults.truncateProb = 0.5;
    EXPECT_NE(fp(signal_faults, one), reference)
        << "signal faults change trace content, so they key the journal";

    EXPECT_NE(fp(base, two), reference);
    EXPECT_NE(collectionFingerprint(base, 8, 4, 8, one), reference);
    EXPECT_NE(collectionFingerprint(base, 7, 5, 8, one), reference);

    // IO faults corrupt persistence, never trace content: a resumed
    // run WITHOUT the crash fault must find the crashed run's journal.
    CollectionConfig io_faults = base;
    io_faults.faults.ioCrashAfterRecords = 3;
    io_faults.faults.ioTornWriteBytes = 10;
    io_faults.faults.ioCorruptRecordProb = 1.0;
    EXPECT_EQ(fp(io_faults, one), reference);
}

TEST(CheckpointJournal, TruncationAtEveryByteOffsetRepairsAndResumes)
{
    const std::string dir = journalDir("truncate");
    const auto faults = sim::FaultConfig::none();
    constexpr int kCells = 5;

    std::vector<std::vector<Result<Trace>>> cells;
    for (int i = 0; i < kCells; ++i)
        cells.push_back(exampleCell(100 + i, i % 2 == 1));

    std::string journal_path;
    {
        auto journal = CheckpointJournal::open(dir, 0xfeed, faults);
        ASSERT_TRUE(journal.isOk());
        for (int i = 0; i < kCells; ++i)
            ASSERT_TRUE(journal.value()
                            ->appendCell(kCheckpointClosedWorld, i, 0,
                                         cells[i])
                            .isOk());
        journal_path = journal.value()->path();
    }
    const std::string full = readAll(journal_path);
    ASSERT_GT(full.size(), 100u);

    // Kill -9 at every byte offset: the journal must always reopen,
    // load a prefix of complete cells, and resume to a state where
    // every cell is bit-identical to the uninterrupted journal's.
    for (std::size_t cut = 0; cut <= full.size(); cut += 7) {
        SCOPED_TRACE("truncated at byte " + std::to_string(cut));
        writeAll(journal_path, full.substr(0, cut));

        auto journal = CheckpointJournal::open(dir, 0xfeed, faults);
        ASSERT_TRUE(journal.isOk()) << journal.status().toString();
        const std::size_t loaded = journal.value()->cellCount();
        ASSERT_LE(loaded, static_cast<std::size_t>(kCells));
        if (cut < full.size()) {
            EXPECT_LT(loaded, static_cast<std::size_t>(kCells));
        }
        EXPECT_EQ(journal.value()->repairStats().cellsLoaded, loaded);

        // Every loaded cell is a bit-identical prefix cell, and the
        // resumed "collection" re-appends exactly the missing ones.
        int missing = 0;
        for (int i = 0; i < kCells; ++i) {
            const auto cached =
                journal.value()->lookup(kCheckpointClosedWorld, i, 0);
            if (cached.has_value()) {
                expectCellsBitIdentical(*cached, cells[i]);
            } else {
                ++missing;
                ASSERT_TRUE(journal.value()
                                ->appendCell(kCheckpointClosedWorld, i,
                                             0, cells[i])
                                .isOk());
            }
        }
        EXPECT_EQ(static_cast<std::size_t>(kCells) - loaded,
                  static_cast<std::size_t>(missing));

        // After the resume, a fresh open sees the complete journal.
        auto reopened = CheckpointJournal::open(dir, 0xfeed, faults);
        ASSERT_TRUE(reopened.isOk());
        EXPECT_EQ(reopened.value()->cellCount(),
                  static_cast<std::size_t>(kCells));
        for (int i = 0; i < kCells; ++i) {
            const auto cached =
                reopened.value()->lookup(kCheckpointClosedWorld, i, 0);
            ASSERT_TRUE(cached.has_value());
            expectCellsBitIdentical(*cached, cells[i]);
        }
    }
}

TEST(CheckpointJournal, CorruptedMiddleRecordIsDroppedNotFatal)
{
    const std::string dir = journalDir("corrupt");
    const auto faults = sim::FaultConfig::none();
    std::string journal_path;
    {
        auto journal = CheckpointJournal::open(dir, 0xbeef, faults);
        ASSERT_TRUE(journal.isOk());
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(journal.value()
                            ->appendCell(kCheckpointClosedWorld, i, 0,
                                         exampleCell(i))
                            .isOk());
        journal_path = journal.value()->path();
    }
    std::string bytes = readAll(journal_path);
    // Flip one payload byte inside the middle record (well past the
    // first record, well before the last frame header).
    const std::size_t second_frame = bytes.find("@rec ", bytes.find("@rec ") + 1);
    ASSERT_NE(second_frame, std::string::npos);
    const std::size_t target = bytes.find("0x", second_frame);
    ASSERT_NE(target, std::string::npos);
    bytes[target + 2] ^= 0x01;
    writeAll(journal_path, bytes);

    auto journal = CheckpointJournal::open(dir, 0xbeef, faults);
    ASSERT_TRUE(journal.isOk());
    EXPECT_TRUE(journal.value()->repairStats().repaired());
    EXPECT_EQ(journal.value()->repairStats().recordsDropped, 1u);
    EXPECT_EQ(journal.value()->cellCount(), 2u);
    EXPECT_TRUE(
        journal.value()->lookup(kCheckpointClosedWorld, 0, 0).has_value());
    EXPECT_FALSE(
        journal.value()->lookup(kCheckpointClosedWorld, 1, 0).has_value())
        << "the corrupted cell must be forgotten";
    EXPECT_TRUE(
        journal.value()->lookup(kCheckpointClosedWorld, 2, 0).has_value())
        << "records after the corrupted one must survive";
}

TEST(CheckpointJournal, MismatchedFingerprintOpensADifferentJournal)
{
    const std::string dir = journalDir("fingerprint");
    const auto faults = sim::FaultConfig::none();
    auto a = CheckpointJournal::open(dir, 0x1111, faults);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(a.value()
                    ->appendCell(kCheckpointClosedWorld, 0, 0,
                                 exampleCell(1))
                    .isOk());
    auto b = CheckpointJournal::open(dir, 0x2222, faults);
    ASSERT_TRUE(b.isOk());
    EXPECT_NE(a.value()->path(), b.value()->path());
    EXPECT_EQ(b.value()->cellCount(), 0u)
        << "stale progress must never leak across configurations";
}

TEST(CheckpointJournal, IoCorruptFaultProducesRecordsTheRepairDrops)
{
    const std::string dir = journalDir("iofault");
    sim::FaultConfig faults = sim::FaultConfig::none();
    faults.ioCorruptRecordProb = 1.0;
    faults.seed = 99;
    ASSERT_TRUE(faults.ioEnabled());
    {
        auto journal = CheckpointJournal::open(dir, 0xcafe, faults);
        ASSERT_TRUE(journal.isOk());
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(journal.value()
                            ->appendCell(kCheckpointClosedWorld, i, 0,
                                         exampleCell(i))
                            .isOk());
    }
    auto reopened =
        CheckpointJournal::open(dir, 0xcafe, sim::FaultConfig::none());
    ASSERT_TRUE(reopened.isOk());
    EXPECT_EQ(reopened.value()->repairStats().recordsDropped, 3u)
        << "every record was corrupted, every record must be dropped";
    EXPECT_EQ(reopened.value()->cellCount(), 0u);
}

TEST(CheckpointJournalDeathTest, CrashFaultAbortsAndLeavesRepairableTornPrefix)
{
    const std::string dir = journalDir("crash");
    sim::FaultConfig faults = sim::FaultConfig::none();
    faults.ioCrashAfterRecords = 1;
    faults.ioTornWriteBytes = 20;

    const auto crash = [&] {
        auto journal = CheckpointJournal::open(dir, 0xdead, faults);
        if (!journal.isOk())
            return;
        // First append succeeds; the second hits the crash fault:
        // a torn 20-byte prefix is persisted, then abort().
        (void)journal.value()->appendCell(kCheckpointClosedWorld, 0, 0,
                                          exampleCell(1));
        (void)journal.value()->appendCell(kCheckpointClosedWorld, 1, 0,
                                          exampleCell(2));
    };
    EXPECT_DEATH(crash(), "simulated crash");

    auto reopened =
        CheckpointJournal::open(dir, 0xdead, sim::FaultConfig::none());
    ASSERT_TRUE(reopened.isOk());
    EXPECT_EQ(reopened.value()->cellCount(), 1u)
        << "the record completed before the crash must survive";
    EXPECT_TRUE(reopened.value()->repairStats().repaired())
        << "the torn prefix must be detected and dropped";
    const auto cell =
        reopened.value()->lookup(kCheckpointClosedWorld, 0, 0);
    ASSERT_TRUE(cell.has_value());
    expectCellsBitIdentical(*cell, exampleCell(1));
}

TEST(CheckpointJournal, PipelineResumeIsBitIdenticalToUninterruptedRun)
{
    CollectionConfig config;
    config.seed = 11;
    PipelineConfig pipeline;
    pipeline.numSites = 4;
    pipeline.tracesPerSite = 6;
    pipeline.openWorldExtra = 8;
    pipeline.featureLen = 64;
    pipeline.eval.folds = 2;
    pipeline.factory = ml::knnFactory(3);

    const attack::AttackerKind kinds[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    // Reference: no checkpointing at all.
    const auto reference =
        runFingerprintingShared(config, kinds, pipeline);
    ASSERT_TRUE(reference.isOk());

    const auto expectSameResults =
        [&](const std::vector<FingerprintResult> &got) {
            ASSERT_EQ(got.size(), reference.value().size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                const auto &r = reference.value()[i];
                const auto &g = got[i];
                EXPECT_EQ(g.closedWorld.top1Mean, r.closedWorld.top1Mean);
                EXPECT_EQ(g.closedWorld.foldTop1, r.closedWorld.foldTop1);
                EXPECT_EQ(g.openWorld.openWorld.combinedAccuracy,
                          r.openWorld.openWorld.combinedAccuracy);
                EXPECT_EQ(g.collectedTraces, r.collectedTraces);
                EXPECT_EQ(g.droppedTraces, r.droppedTraces);
            }
        };

    // Checkpointed cold run: journal is created, results unchanged.
    pipeline.checkpointDir = journalDir("pipeline");
    const auto cold = runFingerprintingShared(config, kinds, pipeline);
    ASSERT_TRUE(cold.isOk());
    expectSameResults(cold.value());

    // Warm run: every cell served from the journal, results unchanged.
    const auto warm = runFingerprintingShared(config, kinds, pipeline);
    ASSERT_TRUE(warm.isOk());
    expectSameResults(warm.value());

    // Kill-at-record-K: truncate the journal to 60% (torn mid-record),
    // then rerun — the repaired journal plus recollection of missing
    // cells must still be bit-identical to the uninterrupted run.
    const std::uint64_t fp = collectionFingerprint(
        config, pipeline.catalogSeed, pipeline.numSites,
        pipeline.openWorldExtra, kinds);
    auto journal = CheckpointJournal::open(pipeline.checkpointDir, fp,
                                           sim::FaultConfig::none());
    ASSERT_TRUE(journal.isOk());
    const std::string path = journal.value()->path();
    ASSERT_GT(journal.value()->cellCount(), 0u)
        << "pipeline must journal into the fingerprinted path";
    journal.value().reset(); // Close before mutating the file.
    const std::string bytes = readAll(path);
    writeAll(path, bytes.substr(0, bytes.size() * 3 / 5));

    const auto resumed = runFingerprintingShared(config, kinds, pipeline);
    ASSERT_TRUE(resumed.isOk());
    expectSameResults(resumed.value());
}

} // namespace
} // namespace bigfish::core

