/**
 * @file
 * Corrupted-input robustness tests for the trace persistence layer.
 *
 * Builds a corpus of ~50 mutated trace files (torn writes, bit flips,
 * wrong headers, NaN counts, out-of-range ids, garbage rows) and checks
 * the error contract: the strict reader reports a Status instead of
 * terminating, and the lenient reader never fails on content while
 * keeping its repair accounting exactly consistent.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/trace_io.hh"
#include "base/rng.hh"

namespace bigfish::attack {
namespace {

TraceSet
exampleSet()
{
    TraceSet set;
    Rng rng(99);
    for (int t = 0; t < 6; ++t) {
        Trace trace;
        trace.siteId = t % 3;
        trace.label = t % 3;
        trace.period = 5'000'000;
        trace.attacker = "loop-counting";
        for (int i = 0; i < 40; ++i)
            trace.counts.push_back(
                20000.0 + static_cast<double>(rng.uniformInt(0, 4999)));
        set.add(trace);
    }
    return set;
}

std::string
baseText()
{
    std::stringstream out;
    EXPECT_TRUE(writeTraces(out, exampleSet()).isOk());
    return out.str();
}

/** ~50 deterministic corruptions of one valid trace file. */
std::vector<std::string>
mutatedCorpus()
{
    const std::string base = baseText();
    std::vector<std::string> files;
    Rng rng(4242);

    // Torn writes: the file cut at an arbitrary byte.
    for (int i = 0; i < 14; ++i) {
        const auto len = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(base.size()) - 1));
        files.push_back(base.substr(0, len));
    }

    // Disk corruption: one flipped bit somewhere in the file.
    for (int i = 0; i < 14; ++i) {
        std::string s = base;
        const auto pos = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(s.size()) - 1));
        s[pos] = static_cast<char>(s[pos] ^
                                   (1u << rng.uniformInt(0, 7)));
        files.push_back(s);
    }

    // Wrong or missing headers.
    files.push_back("");
    files.push_back("\n");
    files.push_back("junk\n1,1,5000000,loop,10,20\n");
    files.push_back("# bigfish-traces v2\n1,1,5000000,loop,10,20\n");
    files.push_back("# bigfish-weights v1\n1 1 0.5\n");
    files.push_back(base.substr(base.find('\n') + 1)); // Header removed.

    // Non-finite counts.
    files.push_back(base + "1,1,5000000,loop,nan,20\n");
    files.push_back(base + "1,1,5000000,loop,inf\n");
    files.push_back(base + "2,2,5000000,loop,-inf,3\n");
    files.push_back(base + "0,0,5000000,loop,1,nan(0x7)\n");
    files.push_back(base + "1,1,5000000,loop,10,infinity\n");
    files.push_back(base + "1,1,5000000,loop,-nan\n");

    // Out-of-range ids and periods.
    files.push_back(base + "20000001,1,5000000,loop,10\n");
    files.push_back(base + "-5,1,5000000,loop,10\n");
    files.push_back(base + "1,20000001,5000000,loop,10\n");
    files.push_back(base + "1,1,-5,loop,10\n");
    files.push_back(base + "1,1,0,loop,10\n");

    // Short and garbage rows.
    files.push_back(base + "1,1\n");
    files.push_back(base + "1,1,5000000,loop\n");
    files.push_back(base + "x,y,z\n");
    files.push_back(base + "1,1,zzz,loop,10\n");
    files.push_back(base + ",,,,\n");
    files.push_back(base + "1,1,5000000,loop,12,abc\n");

    return files;
}

void
expectConsistentStats(const TraceRepairStats &stats,
                      const TraceSet &traces)
{
    EXPECT_EQ(stats.rowsKept + stats.rowsDropped, stats.rowsTotal);
    EXPECT_EQ(traces.size(), stats.rowsKept);
    EXPECT_EQ(stats.shortRows + stats.badNumberRows + stats.overlongRows +
                  stats.outOfRangeRows + stats.nonFiniteRows,
              stats.rowsDropped);
}

TEST(RobustCorpus, FiftyMutatedFilesNeverAbort)
{
    const auto files = mutatedCorpus();
    ASSERT_GE(files.size(), 50u);
    const std::string dir = ::testing::TempDir();
    int idx = 0;
    for (const std::string &content : files) {
        const std::string path =
            dir + "/bf_corrupt_" + std::to_string(idx++) + ".csv";
        {
            std::ofstream out(path);
            ASSERT_TRUE(out.good());
            out << content;
        }

        // Strict read: failing is fine, terminating is not; errors must
        // carry a message.
        const auto strict = loadTraces(path);
        if (!strict.isOk()) {
            EXPECT_FALSE(strict.status().message().empty())
                << "corpus file " << idx;
        }

        // Lenient read: cannot fail on content, and the repair
        // accounting must add up exactly.
        const auto lenient = loadTracesLenient(path);
        ASSERT_TRUE(lenient.isOk()) << "corpus file " << idx;
        expectConsistentStats(lenient.value().stats,
                              lenient.value().traces);

        // A strict success must agree with the lenient reader.
        if (strict.isOk()) {
            EXPECT_EQ(strict.value().size(),
                      lenient.value().traces.size())
                << "corpus file " << idx;
        }
    }
}

TEST(RobustCorpus, LenientAccountingIsExact)
{
    std::stringstream in;
    in << "# bigfish-traces v1\n"
       << "0,0,5000000,loop,10,20,30\n"          // kept
       << "# a comment\n"                        // ignored
       << "1,1,5000000,loop,11,21,31\n"          // kept
       << "2,2\n"                                // short
       << "x,3,5000000,loop,12\n"                // bad number
       << "3,3,5000000,loop,nan\n"               // non-finite
       << "20000001,4,5000000,loop,13\n"         // out-of-range
       << "\n"                                   // ignored
       << "4,4,5000000,loop,14,24\n";            // kept
    const LenientTraces result = readTracesLenient(in);
    EXPECT_TRUE(result.stats.headerOk);
    EXPECT_EQ(result.stats.rowsTotal, 7u);
    EXPECT_EQ(result.stats.rowsKept, 3u);
    EXPECT_EQ(result.stats.rowsDropped, 4u);
    EXPECT_EQ(result.stats.shortRows, 1u);
    EXPECT_EQ(result.stats.badNumberRows, 1u);
    EXPECT_EQ(result.stats.nonFiniteRows, 1u);
    EXPECT_EQ(result.stats.outOfRangeRows, 1u);
    EXPECT_EQ(result.stats.overlongRows, 0u);
    EXPECT_EQ(result.traces.size(), 3u);
    EXPECT_EQ(result.traces.traces[2].counts.size(), 2u);
    expectConsistentStats(result.stats, result.traces);
    EXPECT_NE(result.stats.summary().find("kept 3/7"),
              std::string::npos);
}

TEST(RobustCorpus, OverlongRowIsRejectedNotStored)
{
    std::string row = "1,1,5000000,loop";
    row.reserve(2 * kMaxCountsPerRow + 32);
    for (std::size_t i = 0; i <= kMaxCountsPerRow; ++i)
        row += ",1";
    std::stringstream strict_in;
    strict_in << "# bigfish-traces v1\n" << row << "\n";
    const auto strict = readTraces(strict_in);
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.status().code(), ErrorCode::OutOfRange);

    std::stringstream lenient_in;
    lenient_in << "# bigfish-traces v1\n"
               << row << "\n"
               << "1,1,5000000,loop,10\n";
    const LenientTraces result = readTracesLenient(lenient_in);
    EXPECT_EQ(result.stats.overlongRows, 1u);
    EXPECT_EQ(result.traces.size(), 1u);
    expectConsistentStats(result.stats, result.traces);
}

TEST(RobustCorpus, LenientParsesHeaderlessData)
{
    std::stringstream in;
    in << "1,1,5000000,loop,10,20\n"
       << "2,2,5000000,loop,11,21\n";
    const LenientTraces result = readTracesLenient(in);
    EXPECT_FALSE(result.stats.headerOk);
    EXPECT_EQ(result.stats.headerFound, "1,1,5000000,loop,10,20");
    EXPECT_EQ(result.traces.size(), 2u);
    expectConsistentStats(result.stats, result.traces);
}

TEST(RobustCorpus, VersionMismatchNamesFoundHeader)
{
    std::stringstream in;
    in << "# bigfish-traces v2\n1,1,5000000,loop,10\n";
    const auto result = readTraces(in);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("unsupported"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("# bigfish-traces v2"),
              std::string::npos);
}

TEST(RobustCorpus, MissingFileIsAnIoError)
{
    const auto strict = loadTraces("/nonexistent/bigfish/traces.csv");
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.status().code(), ErrorCode::IoError);
    const auto lenient =
        loadTracesLenient("/nonexistent/bigfish/traces.csv");
    ASSERT_FALSE(lenient.isOk());
    EXPECT_EQ(lenient.status().code(), ErrorCode::IoError);
}

TEST(RobustCorpus, DiskRoundTripPreservesTraces)
{
    const TraceSet set = exampleSet();
    const std::string path = ::testing::TempDir() + "/bf_roundtrip.csv";
    ASSERT_TRUE(saveTraces(path, set).isOk());
    const auto loaded = loadTraces(path);
    ASSERT_TRUE(loaded.isOk());
    ASSERT_EQ(loaded.value().size(), set.size());
    for (std::size_t t = 0; t < set.size(); ++t) {
        const Trace &a = set.traces[t];
        const Trace &b = loaded.value().traces[t];
        EXPECT_EQ(a.siteId, b.siteId);
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.period, b.period);
        ASSERT_EQ(a.counts.size(), b.counts.size());
        for (std::size_t i = 0; i < a.counts.size(); ++i)
            EXPECT_DOUBLE_EQ(a.counts[i], b.counts[i]);
    }
}

} // namespace
} // namespace bigfish::attack
