/**
 * @file
 * Self-test for bigfish-lint (tools/lint/): runs the real binary over
 * the checked-in fixture files and asserts the exact diagnostic set.
 *
 * The contract under test:
 *  - every line annotated `// expect-lint: <rule>` in a fixture yields
 *    exactly that (file, line, rule) diagnostic, and nothing else in
 *    the fixtures fires (so suppression comments, allowlisted layer
 *    exceptions and negative cases are verified by the same equality);
 *  - disabling a rule (--disable / config file) removes exactly that
 *    rule's findings — proving each fixture exercises its own rule;
 *  - allowlist entries silence a file for one rule only;
 *  - --json emits machine-readable records and the exit code reflects
 *    whether findings remain;
 *  - --sarif emits a SARIF 2.1.0 document that matches the checked-in
 *    golden byte for byte and carries the schema's required structure;
 *  - the baseline workflow (--write-baseline / --baseline) demotes
 *    known findings to warnings and exit 0;
 *  - --since <rev> reports exactly the full run's findings restricted
 *    to files git considers changed;
 *  - --fix removes reported unused includes and the rerun is clean.
 *
 * The binary and fixture paths are injected by tests/CMakeLists.txt as
 * BIGFISH_LINT_BINARY / BIGFISH_LINT_FIXTURES. The fixture runs use
 * the fixture-local config (fixtures.toml) so the layer-DAG pass has a
 * graph to enforce.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

namespace fs = std::filesystem;

/** One diagnostic as (file, line, rule); messages are free-form. */
using Finding = std::tuple<std::string, int, std::string>;

struct LintRun
{
    int exitCode = -1;
    std::string stdoutText;
};

/** Runs the linter with @p args appended; captures stdout. */
LintRun
runLint(const std::string &args)
{
    const std::string cmd =
        std::string(BIGFISH_LINT_BINARY) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
    LintRun run;
    if (pipe == nullptr)
        return run;
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        run.stdoutText.append(buffer, got);
    const int rc = pclose(pipe);
    run.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return run;
}

/** Standard invocation over the fixture tree with its local config. */
LintRun
lintFixtures(const std::string &extraArgs = "")
{
    const std::string dir = BIGFISH_LINT_FIXTURES;
    return runLint("--root=" + dir + " --config=" + dir +
                   "/fixtures.toml " + extraArgs + " " + dir);
}

/** Parses `path:line: [rule] message` lines into findings. */
std::vector<Finding>
parseFindings(const std::string &text)
{
    std::vector<Finding> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t open = line.find(": [");
        if (open == std::string::npos)
            continue;
        const std::size_t close = line.find(']', open);
        const std::size_t colon = line.rfind(':', open - 1);
        if (close == std::string::npos || colon == std::string::npos)
            continue;
        out.emplace_back(line.substr(0, colon),
                         std::stoi(line.substr(colon + 1, open - colon - 1)),
                         line.substr(open + 3, close - open - 3));
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

/** Collects `// expect-lint: rule[, rule]` annotations from fixtures. */
std::vector<Finding>
expectedFindings()
{
    std::vector<Finding> out;
    const fs::path base = BIGFISH_LINT_FIXTURES;
    for (const auto &entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file() || !isSourceFile(entry.path()))
            continue;
        const std::string rel =
            fs::relative(entry.path(), base).generic_string();
        std::ifstream in(entry.path());
        std::string line;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            const std::string marker = "expect-lint:";
            const std::size_t at = line.find(marker);
            if (at == std::string::npos)
                continue;
            std::string rules = line.substr(at + marker.size());
            std::istringstream split(rules);
            std::string rule;
            while (std::getline(split, rule, ',')) {
                rule.erase(0, rule.find_first_not_of(" \t"));
                rule.erase(rule.find_last_not_of(" \t") + 1);
                if (!rule.empty())
                    out.emplace_back(rel, lineno, rule);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** All rule names, straight from the binary (--list-rules). */
std::vector<std::string>
allRules()
{
    std::vector<std::string> out;
    std::istringstream in(runLint("--list-rules").stdoutText);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(line);
    return out;
}

std::string
describe(const std::vector<Finding> &findings)
{
    std::string s;
    for (const auto &[file, line, rule] : findings)
        s += "  " + file + ":" + std::to_string(line) + " [" + rule + "]\n";
    return s.empty() ? "  (none)\n" : s;
}

/** Copies fixture @p names (relative) into @p dir, keeping structure. */
void
copyFixtures(const fs::path &dir, const std::vector<std::string> &names)
{
    const fs::path base = BIGFISH_LINT_FIXTURES;
    for (const std::string &name : names) {
        const fs::path to = dir / name;
        fs::create_directories(to.parent_path());
        fs::copy_file(base / name, to,
                      fs::copy_options::overwrite_existing);
    }
}

TEST(LintFixtures, ExactDiagnosticsMatchAnnotations)
{
    const LintRun run = lintFixtures();
    const auto actual = parseFindings(run.stdoutText);
    const auto expected = expectedFindings();
    EXPECT_EQ(run.exitCode, 1) << "fixtures must produce findings";
    EXPECT_EQ(actual, expected)
        << "expected:\n" << describe(expected)
        << "actual:\n" << describe(actual);
}

TEST(LintFixtures, EveryRuleHasAtLeastOneFixtureFinding)
{
    // Guards the guard: a rule whose fixture produces nothing could be
    // deleted without ExactDiagnosticsMatchAnnotations noticing. The
    // rule list comes from the binary itself, so a newly added rule
    // without a fixture fails here.
    const auto rules = allRules();
    ASSERT_GE(rules.size(), 13u);
    const auto expected = expectedFindings();
    for (const std::string &rule : rules) {
        const bool present = std::any_of(
            expected.begin(), expected.end(),
            [&](const Finding &f) { return std::get<2>(f) == rule; });
        EXPECT_TRUE(present) << "no fixture annotation for rule " << rule;
    }
}

TEST(LintFixtures, DisablingARuleRemovesExactlyItsFindings)
{
    const auto baseline = parseFindings(lintFixtures().stdoutText);
    for (const std::string &rule : allRules()) {
        const LintRun run = lintFixtures("--disable=" + rule);
        const auto actual = parseFindings(run.stdoutText);
        std::vector<Finding> want;
        std::copy_if(baseline.begin(), baseline.end(),
                     std::back_inserter(want), [&](const Finding &f) {
                         return std::get<2>(f) != rule;
                     });
        EXPECT_EQ(actual, want) << "--disable=" << rule;
        EXPECT_LT(actual.size(), baseline.size())
            << "disabling " << rule << " must remove findings";
    }
}

TEST(LintFixtures, ConfigFileDisablesRule)
{
    const fs::path config =
        fs::temp_directory_path() / "bigfish_lint_test_rules.toml";
    {
        std::ofstream out(config);
        out << "[rules]\nnondeterminism = false\n";
    }
    const std::string dir = BIGFISH_LINT_FIXTURES;
    const LintRun run =
        runLint("--root=" + dir + " --config=" + config.string() + " " + dir);
    fs::remove(config);
    for (const auto &[file, line, rule] : parseFindings(run.stdoutText))
        EXPECT_NE(rule, "nondeterminism") << file << ":" << line;
}

TEST(LintFixtures, AllowlistSilencesOneRuleForMatchingPaths)
{
    const fs::path config =
        fs::temp_directory_path() / "bigfish_lint_test_allow.toml";
    {
        std::ofstream out(config);
        out << "[allow.nondeterminism]\npaths = [\"nondeterminism.cc\"]\n";
    }
    const std::string dir = BIGFISH_LINT_FIXTURES;
    const LintRun run =
        runLint("--root=" + dir + " --config=" + config.string() + " " + dir);
    fs::remove(config);
    const auto actual = parseFindings(run.stdoutText);
    for (const auto &[file, line, rule] : actual) {
        EXPECT_FALSE(file == "nondeterminism.cc" &&
                     rule == "nondeterminism")
            << "allowlisted finding survived at line " << line;
    }
    // The allowlist is per-rule, not per-file: other rules' findings
    // and other files' nondeterminism findings must survive.
    const bool other_rules_survive = std::any_of(
        actual.begin(), actual.end(), [](const Finding &f) {
            return std::get<2>(f) == "raw-thread";
        });
    EXPECT_TRUE(other_rules_survive);
}

TEST(LintFixtures, SuppressionCommentsSilenceAnnotatedLines)
{
    // suppressed.cc carries real violations, each with an inline
    // allow(...) comment; the exact-match test already proves it emits
    // nothing, so here just pin the file is actually scanned.
    const LintRun run = lintFixtures();
    for (const auto &[file, line, rule] : parseFindings(run.stdoutText))
        EXPECT_NE(file, "suppressed.cc")
            << "suppressed finding leaked: " << rule << " at " << line;
}

TEST(LintFixtures, JsonOutputIsMachineReadable)
{
    const LintRun run = lintFixtures("--json");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.stdoutText.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(run.stdoutText.find("\"rule\": \"nondeterminism\""),
              std::string::npos);
    EXPECT_NE(run.stdoutText.find("\"file\": \"raw_thread.cc\""),
              std::string::npos);
    // Count field matches the text-mode finding count.
    const auto text_findings = parseFindings(lintFixtures().stdoutText);
    const std::string needle =
        "\"count\": " + std::to_string(text_findings.size());
    EXPECT_NE(run.stdoutText.find(needle), std::string::npos)
        << run.stdoutText;
}

TEST(LintSarif, OutputMatchesGoldenByteForByte)
{
    // The golden file pins the whole document: rule metadata, result
    // ordering, root-relative URIs. Regenerate it with
    //   bigfish-lint --root=FIXTURES --config=FIXTURES/fixtures.toml
    //     --sarif=- FIXTURES > FIXTURES/golden.sarif
    // after intentionally changing fixtures or the SARIF writer.
    const LintRun run = lintFixtures("--sarif=-");
    EXPECT_EQ(run.exitCode, 1);
    std::ifstream in(fs::path(BIGFISH_LINT_FIXTURES) / "golden.sarif",
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "golden.sarif missing";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(run.stdoutText, golden.str());
}

TEST(LintSarif, DocumentCarriesRequiredSchemaStructure)
{
    // Structural validation against SARIF 2.1.0's required properties
    // (the schema's `required` lists for sarifLog, run, tool,
    // toolComponent, result): version + runs; tool.driver.name;
    // results with ruleId, message and a physical location. Keeps the
    // document honest without a JSON-schema engine in the test image.
    const LintRun run = lintFixtures("--sarif=-");
    const std::string &doc = run.stdoutText;
    EXPECT_NE(doc.find("\"$schema\": "
                       "\"https://json.schemastore.org/sarif-2.1.0.json\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"driver\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"bigfish-lint\""), std::string::npos);
    EXPECT_NE(doc.find("\"results\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": "), std::string::npos);
    EXPECT_NE(doc.find("\"message\": {\"text\": "), std::string::npos);
    EXPECT_NE(doc.find("\"physicalLocation\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"artifactLocation\": {\"uri\": "),
              std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": "), std::string::npos);
    // Every rule the binary knows is present in the rule metadata.
    for (const std::string &rule : allRules())
        EXPECT_NE(doc.find("{\"id\": \"" + rule + "\""), std::string::npos)
            << rule;
    // New findings are errors with baselineState "new".
    EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"baselineState\": \"new\""), std::string::npos);
}

TEST(LintBaseline, WriteThenRerunDemotesFindingsAndExitsZero)
{
    const fs::path baseline =
        fs::temp_directory_path() / "bigfish_lint_test_baseline.txt";
    const LintRun wrote =
        lintFixtures("--baseline=" + baseline.string() + " --write-baseline");
    EXPECT_EQ(wrote.exitCode, 0);

    const LintRun rerun = lintFixtures("--baseline=" + baseline.string());
    EXPECT_EQ(rerun.exitCode, 0)
        << "baselined findings must not fail the run\n" << rerun.stdoutText;
    EXPECT_NE(rerun.stdoutText.find("(baselined)"), std::string::npos);
    EXPECT_NE(rerun.stdoutText.find("0 finding(s)"), std::string::npos);

    // In SARIF, baselined findings demote to warning/unchanged.
    const LintRun sarif =
        lintFixtures("--baseline=" + baseline.string() + " --sarif=-");
    EXPECT_EQ(sarif.exitCode, 0);
    EXPECT_NE(sarif.stdoutText.find("\"baselineState\": \"unchanged\""),
              std::string::npos);
    EXPECT_EQ(sarif.stdoutText.find("\"baselineState\": \"new\""),
              std::string::npos);
    fs::remove(baseline);
}

TEST(LintSince, ReportsOnlyChangedFilesWithFullRunFindings)
{
    const fs::path dir =
        fs::temp_directory_path() / "bigfish_lint_since_repo";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto writeSource = [&](const char *name, const char *extra) {
        std::ofstream out(dir / name);
        out << "int rand();\n"
               "int fixtureEntropy() { return rand(); }\n"
            << extra;
    };
    writeSource("changed.cc", "");
    writeSource("same.cc", "");
    const std::string git = "git -C '" + dir.string() + "' ";
    ASSERT_EQ(std::system((git + "init -q").c_str()), 0);
    ASSERT_EQ(std::system((git + "add -A").c_str()), 0);
    ASSERT_EQ(std::system((git + "-c user.email=lint@test -c "
                                 "user.name=lint commit -qm seed")
                              .c_str()),
              0);
    writeSource("changed.cc", "int fixtureMore() { return rand(); }\n");

    const std::string common = "--root=" + dir.string() + " " + dir.string();
    const auto full = parseFindings(runLint(common).stdoutText);
    const LintRun since = runLint("--since=HEAD " + common);
    const auto restricted = parseFindings(since.stdoutText);

    // Only changed.cc is reported, with exactly the findings the full
    // run produced for it — the cross-TU passes still saw everything.
    std::vector<Finding> want;
    std::copy_if(full.begin(), full.end(), std::back_inserter(want),
                 [](const Finding &f) {
                     return std::get<0>(f) == "changed.cc";
                 });
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(restricted, want)
        << "since:\n" << describe(restricted)
        << "full-for-changed:\n" << describe(want);
    const bool any_same = std::any_of(
        full.begin(), full.end(), [](const Finding &f) {
            return std::get<0>(f) == "same.cc";
        });
    EXPECT_TRUE(any_same) << "full run must still cover unchanged files";
    fs::remove_all(dir);
}

TEST(LintFix, RemovesUnusedIncludesAndRerunsClean)
{
    const fs::path dir = fs::temp_directory_path() / "bigfish_lint_fix";
    fs::remove_all(dir);
    fs::create_directories(dir);
    copyFixtures(dir, {"unused_include.cc", "helpers/used.hh",
                       "helpers/unused.hh"});
    const std::string common = "--root=" + dir.string() + " " + dir.string();

    const LintRun before = runLint(common);
    const auto pre = parseFindings(before.stdoutText);
    const bool had_unused = std::any_of(
        pre.begin(), pre.end(), [](const Finding &f) {
            return std::get<2>(f) == "unused-include";
        });
    ASSERT_TRUE(had_unused);

    const LintRun fixed = runLint("--fix " + common);
    EXPECT_EQ(fixed.exitCode, 0) << fixed.stdoutText;
    {
        std::ifstream in(dir / "unused_include.cc");
        std::stringstream text;
        text << in.rdbuf();
        EXPECT_EQ(text.str().find("helpers/unused.hh"), std::string::npos)
            << "the unused include line must be gone";
        EXPECT_NE(text.str().find("helpers/used.hh"), std::string::npos)
            << "the used include must survive";
    }
    const auto post = parseFindings(runLint(common).stdoutText);
    for (const auto &[file, line, rule] : post)
        EXPECT_NE(rule, "unused-include") << file << ":" << line;
    fs::remove_all(dir);
}

TEST(LintCli, CleanInputExitsZeroAndUnknownRuleIsAnError)
{
    const fs::path clean =
        fs::temp_directory_path() / "bigfish_lint_clean.cc";
    {
        std::ofstream out(clean);
        out << "int add(int a, int b) { return a + b; }\n";
    }
    const LintRun ok = runLint("--root=" + clean.parent_path().string() +
                               " " + clean.string());
    EXPECT_EQ(ok.exitCode, 0) << ok.stdoutText;
    fs::remove(clean);

    EXPECT_EQ(lintFixtures("--disable=no-such-rule").exitCode, 2);
    EXPECT_EQ(runLint("--json").exitCode, 2) << "no inputs is a usage error";
}

} // namespace
