/**
 * @file
 * Self-test for bigfish-lint (tools/lint/): runs the real binary over
 * the checked-in fixture files and asserts the exact diagnostic set.
 *
 * The contract under test:
 *  - every line annotated `// expect-lint: <rule>` in a fixture yields
 *    exactly that (file, line, rule) diagnostic, and nothing else in
 *    the fixtures fires (so suppression comments and negative cases
 *    are verified by the same equality);
 *  - disabling a rule (--disable / config file) removes exactly that
 *    rule's findings — proving each fixture exercises its own rule;
 *  - allowlist entries silence a file for one rule only;
 *  - --json emits machine-readable records and the exit code reflects
 *    whether findings remain.
 *
 * The binary and fixture paths are injected by tests/CMakeLists.txt as
 * BIGFISH_LINT_BINARY / BIGFISH_LINT_FIXTURES.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

namespace fs = std::filesystem;

/** One diagnostic as (file, line, rule); messages are free-form. */
using Finding = std::tuple<std::string, int, std::string>;

struct LintRun
{
    int exitCode = -1;
    std::string stdoutText;
};

/** Runs the linter with @p args appended; captures stdout. */
LintRun
runLint(const std::string &args)
{
    const std::string cmd =
        std::string(BIGFISH_LINT_BINARY) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
    LintRun run;
    if (pipe == nullptr)
        return run;
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        run.stdoutText.append(buffer, got);
    const int rc = pclose(pipe);
    run.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return run;
}

/** Standard invocation over the fixture directory, no config file. */
LintRun
lintFixtures(const std::string &extraArgs = "")
{
    const std::string dir = BIGFISH_LINT_FIXTURES;
    return runLint("--root=" + dir + " " + extraArgs + " " + dir);
}

/** Parses `path:line: [rule] message` lines into findings. */
std::vector<Finding>
parseFindings(const std::string &text)
{
    std::vector<Finding> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t open = line.find(": [");
        if (open == std::string::npos)
            continue;
        const std::size_t close = line.find(']', open);
        const std::size_t colon = line.rfind(':', open - 1);
        if (close == std::string::npos || colon == std::string::npos)
            continue;
        out.emplace_back(line.substr(0, colon),
                         std::stoi(line.substr(colon + 1, open - colon - 1)),
                         line.substr(open + 3, close - open - 3));
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** Collects `// expect-lint: rule[, rule]` annotations from fixtures. */
std::vector<Finding>
expectedFindings()
{
    std::vector<Finding> out;
    for (const auto &entry : fs::directory_iterator(BIGFISH_LINT_FIXTURES)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream in(entry.path());
        std::string line;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            const std::string marker = "expect-lint:";
            const std::size_t at = line.find(marker);
            if (at == std::string::npos)
                continue;
            std::string rules = line.substr(at + marker.size());
            std::istringstream split(rules);
            std::string rule;
            while (std::getline(split, rule, ',')) {
                rule.erase(0, rule.find_first_not_of(" \t"));
                rule.erase(rule.find_last_not_of(" \t") + 1);
                if (!rule.empty())
                    out.emplace_back(entry.path().filename().string(),
                                     lineno, rule);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
describe(const std::vector<Finding> &findings)
{
    std::string s;
    for (const auto &[file, line, rule] : findings)
        s += "  " + file + ":" + std::to_string(line) + " [" + rule + "]\n";
    return s.empty() ? "  (none)\n" : s;
}

TEST(LintFixtures, ExactDiagnosticsMatchAnnotations)
{
    const LintRun run = lintFixtures();
    const auto actual = parseFindings(run.stdoutText);
    const auto expected = expectedFindings();
    EXPECT_EQ(run.exitCode, 1) << "fixtures must produce findings";
    EXPECT_EQ(actual, expected)
        << "expected:\n" << describe(expected)
        << "actual:\n" << describe(actual);
}

TEST(LintFixtures, EveryRuleHasAtLeastOneFixtureFinding)
{
    // Guards the guard: a rule whose fixture produces nothing could be
    // deleted without ExactDiagnosticsMatchAnnotations noticing.
    const auto expected = expectedFindings();
    for (const std::string rule :
         {"nondeterminism", "unordered-iteration", "discarded-status",
          "raw-thread", "parallel-float-accum", "intrinsics-header"}) {
        const bool present = std::any_of(
            expected.begin(), expected.end(),
            [&](const Finding &f) { return std::get<2>(f) == rule; });
        EXPECT_TRUE(present) << "no fixture annotation for rule " << rule;
    }
}

TEST(LintFixtures, DisablingARuleRemovesExactlyItsFindings)
{
    const auto baseline = parseFindings(lintFixtures().stdoutText);
    for (const std::string rule :
         {"nondeterminism", "unordered-iteration", "discarded-status",
          "raw-thread", "parallel-float-accum", "intrinsics-header"}) {
        const LintRun run = lintFixtures("--disable=" + rule);
        const auto actual = parseFindings(run.stdoutText);
        std::vector<Finding> want;
        std::copy_if(baseline.begin(), baseline.end(),
                     std::back_inserter(want), [&](const Finding &f) {
                         return std::get<2>(f) != rule;
                     });
        EXPECT_EQ(actual, want) << "--disable=" << rule;
        EXPECT_LT(actual.size(), baseline.size())
            << "disabling " << rule << " must remove findings";
    }
}

TEST(LintFixtures, ConfigFileDisablesRule)
{
    const fs::path config =
        fs::temp_directory_path() / "bigfish_lint_test_rules.toml";
    {
        std::ofstream out(config);
        out << "[rules]\nnondeterminism = false\n";
    }
    const LintRun run = lintFixtures("--config=" + config.string());
    fs::remove(config);
    for (const auto &[file, line, rule] : parseFindings(run.stdoutText))
        EXPECT_NE(rule, "nondeterminism") << file << ":" << line;
}

TEST(LintFixtures, AllowlistSilencesOneRuleForMatchingPaths)
{
    const fs::path config =
        fs::temp_directory_path() / "bigfish_lint_test_allow.toml";
    {
        std::ofstream out(config);
        out << "[allow.nondeterminism]\npaths = [\"nondeterminism.cc\"]\n";
    }
    const LintRun run = lintFixtures("--config=" + config.string());
    fs::remove(config);
    const auto actual = parseFindings(run.stdoutText);
    for (const auto &[file, line, rule] : actual) {
        EXPECT_FALSE(file == "nondeterminism.cc" &&
                     rule == "nondeterminism")
            << "allowlisted finding survived at line " << line;
    }
    // The allowlist is per-rule, not per-file: other rules' findings
    // and other files' nondeterminism findings must survive.
    const bool other_rules_survive = std::any_of(
        actual.begin(), actual.end(), [](const Finding &f) {
            return std::get<2>(f) == "raw-thread";
        });
    EXPECT_TRUE(other_rules_survive);
}

TEST(LintFixtures, SuppressionCommentsSilenceAnnotatedLines)
{
    // suppressed.cc carries real violations, each with an inline
    // allow(...) comment; the exact-match test already proves it emits
    // nothing, so here just pin the file is actually scanned.
    const LintRun run = lintFixtures();
    for (const auto &[file, line, rule] : parseFindings(run.stdoutText))
        EXPECT_NE(file, "suppressed.cc")
            << "suppressed finding leaked: " << rule << " at " << line;
}

TEST(LintFixtures, JsonOutputIsMachineReadable)
{
    const LintRun run = lintFixtures("--json");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.stdoutText.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(run.stdoutText.find("\"rule\": \"nondeterminism\""),
              std::string::npos);
    EXPECT_NE(run.stdoutText.find("\"file\": \"raw_thread.cc\""),
              std::string::npos);
    // Count field matches the text-mode finding count.
    const auto text_findings = parseFindings(lintFixtures().stdoutText);
    const std::string needle =
        "\"count\": " + std::to_string(text_findings.size());
    EXPECT_NE(run.stdoutText.find(needle), std::string::npos)
        << run.stdoutText;
}

TEST(LintCli, CleanInputExitsZeroAndUnknownRuleIsAnError)
{
    const fs::path clean =
        fs::temp_directory_path() / "bigfish_lint_clean.cc";
    {
        std::ofstream out(clean);
        out << "int add(int a, int b) { return a + b; }\n";
    }
    const LintRun ok = runLint("--root=" + clean.parent_path().string() +
                               " " + clean.string());
    EXPECT_EQ(ok.exitCode, 0) << ok.stdoutText;
    fs::remove(clean);

    EXPECT_EQ(lintFixtures("--disable=no-such-rule").exitCode, 2);
    EXPECT_EQ(runLint("--json").exitCode, 2) << "no inputs is a usage error";
}

} // namespace
