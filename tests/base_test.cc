/**
 * @file
 * Unit tests for src/base: RNG determinism and distributions, hashing,
 * and table formatting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.hh"
#include "base/table.hh"
#include "base/types.hh"

namespace bigfish {
namespace {

TEST(TimeConstants, RelateCorrectly)
{
    EXPECT_EQ(kUsec, 1000);
    EXPECT_EQ(kMsec, 1000 * kUsec);
    EXPECT_EQ(kSec, 1000 * kMsec);
}

TEST(Mix64, IsDeterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, SpreadsAdjacentInputs)
{
    // Adjacent inputs should differ in roughly half their bits.
    const std::uint64_t a = mix64(1000);
    const std::uint64_t b = mix64(1001);
    const int differing = __builtin_popcountll(a ^ b);
    EXPECT_GT(differing, 16);
    EXPECT_LT(differing, 48);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForksWithDifferentSaltsDiffer)
{
    Rng parent(11);
    Rng f1 = parent.fork(1);
    Rng f2 = parent.fork(2);
    EXPECT_NE(f1(), f2());
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = rng.uniform(5.0, 6.0);
        EXPECT_GE(v, 5.0);
        EXPECT_LT(v, 6.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(4);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 4);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 4);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, LognormalMedianIsParameter)
{
    Rng rng(6);
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i)
        values.push_back(rng.lognormal(100.0, 0.5));
    std::nth_element(values.begin(), values.begin() + 10000, values.end());
    EXPECT_NEAR(values[10000], 100.0, 5.0);
    for (double v : values)
        EXPECT_GT(v, 0.0);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(3.5);
    EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(9);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(10);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Table, RendersHeadersAndRows)
{
    Table t({"A", "Bee"});
    t.addRow({"1", "2"});
    t.addRow({"long-cell", "x"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("Bee"), std::string::npos);
    EXPECT_NE(out.find("long-cell"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.966, 1), "96.6%");
    EXPECT_EQ(formatPercentPm(0.966, 0.008, 1), "96.6 +/- 0.8");
}

} // namespace
} // namespace bigfish
