/**
 * @file
 * Unit tests for src/base: RNG determinism and distributions, hashing,
 * and table formatting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/result.hh"
#include "base/rng.hh"
#include "base/status.hh"
#include "base/table.hh"
#include "base/types.hh"

namespace bigfish {
namespace {

TEST(TimeConstants, RelateCorrectly)
{
    EXPECT_EQ(kUsec, 1000);
    EXPECT_EQ(kMsec, 1000 * kUsec);
    EXPECT_EQ(kSec, 1000 * kMsec);
}

TEST(Crc32, MatchesIeeeCheckValue)
{
    // The CRC-32/IEEE "check" input: crc32("123456789") = 0xCBF43926.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32, DetectsSingleBitFlips)
{
    const std::string clean = "stage-cache payload\n";
    std::string flipped = clean;
    flipped[4] ^= 0x01;
    EXPECT_NE(crc32(clean), crc32(flipped));
    EXPECT_EQ(crc32(clean), crc32(std::string(clean)));
}

TEST(Fnv64, MatchesReferenceVectors)
{
    // FNV-1a 64-bit reference vectors: offset basis for "", and the
    // published single-byte results.
    EXPECT_EQ(fnv64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv64, OrderAndLengthSensitive)
{
    EXPECT_NE(fnv64("ab"), fnv64("ba"));
    EXPECT_NE(fnv64("ab"), fnv64(std::string_view("ab\0", 3)));
    EXPECT_EQ(fnv64("collection=1\n"), fnv64("collection=1\n"));
}

TEST(Mix64, IsDeterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, SpreadsAdjacentInputs)
{
    // Adjacent inputs should differ in roughly half their bits.
    const std::uint64_t a = mix64(1000);
    const std::uint64_t b = mix64(1001);
    const int differing = __builtin_popcountll(a ^ b);
    EXPECT_GT(differing, 16);
    EXPECT_LT(differing, 48);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForksWithDifferentSaltsDiffer)
{
    Rng parent(11);
    Rng f1 = parent.fork(1);
    Rng f2 = parent.fork(2);
    EXPECT_NE(f1(), f2());
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = rng.uniform(5.0, 6.0);
        EXPECT_GE(v, 5.0);
        EXPECT_LT(v, 6.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(4);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 4);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 4);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, LognormalMedianIsParameter)
{
    Rng rng(6);
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i)
        values.push_back(rng.lognormal(100.0, 0.5));
    std::nth_element(values.begin(), values.begin() + 10000, values.end());
    EXPECT_NEAR(values[10000], 100.0, 5.0);
    for (double v : values)
        EXPECT_GT(v, 0.0);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(3.5);
    EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(9);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(10);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Table, RendersHeadersAndRows)
{
    Table t({"A", "Bee"});
    t.addRow({"1", "2"});
    t.addRow({"long-cell", "x"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("Bee"), std::string::npos);
    EXPECT_NE(out.find("long-cell"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.966, 1), "96.6%");
    EXPECT_EQ(formatPercentPm(0.966, 0.008, 1), "96.6 +/- 0.8");
}

TEST(Status, OkAndErrorBasics)
{
    const Status ok = Status::ok();
    EXPECT_TRUE(ok.isOk());
    EXPECT_EQ(ok.code(), ErrorCode::Ok);

    const Status err = parseError("bad row");
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.code(), ErrorCode::ParseError);
    EXPECT_EQ(err.message(), "bad row");
    EXPECT_EQ(err.toString(), "parse-error: bad row");
    EXPECT_EQ(err, parseError("different message, same code"));
    EXPECT_NE(err, dataError("bad row"));
}

TEST(Result, HoldsValueOrStatus)
{
    Result<int> good(42);
    ASSERT_TRUE(good.isOk());
    EXPECT_EQ(good.value(), 42);
    EXPECT_TRUE(good.status().isOk());

    Result<int> bad(invalidArgumentError("nope"));
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(std::move(bad).valueOr(-1), -1);
}

TEST(Result, MapAndAndThenForwardErrors)
{
    const auto doubled =
        Result<int>(21).map([](int v) { return v * 2; });
    ASSERT_TRUE(doubled.isOk());
    EXPECT_EQ(doubled.value(), 42);

    const auto from_error = Result<int>(dataError("gone"))
                                .map([](int v) { return v * 2; });
    ASSERT_FALSE(from_error.isOk());
    EXPECT_EQ(from_error.status().code(), ErrorCode::DataError);

    const auto chained =
        Result<int>(10).andThen([](int v) -> Result<std::string> {
            if (v < 0)
                return Status(outOfRangeError("negative"));
            return std::string(static_cast<std::size_t>(v), 'x');
        });
    ASSERT_TRUE(chained.isOk());
    EXPECT_EQ(chained.value().size(), 10u);

    const auto chained_err =
        Result<int>(exhaustedError("dry"))
            .andThen([](int) -> Result<std::string> {
                return std::string("unreachable");
            });
    ASSERT_FALSE(chained_err.isOk());
    EXPECT_EQ(chained_err.status().code(), ErrorCode::Exhausted);
}

TEST(ResultDeath, ValueOrDieTerminatesWithMessage)
{
    EXPECT_EXIT(
        {
            Result<int> bad(ioError("disk on fire"));
            std::move(bad).valueOrDie();
        },
        ::testing::ExitedWithCode(1), "disk on fire");
}

TEST(Logging, WarnOncePrintsOncePerKey)
{
    ::testing::internal::CaptureStderr();
    warnOnce("base-test/key-a", "first message");
    warnOnce("base-test/key-a", "second message");
    warnOnce("base-test/key-b", "other key");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("first message"), std::string::npos);
    EXPECT_EQ(err.find("second message"), std::string::npos);
    EXPECT_NE(err.find("other key"), std::string::npos);
}

TEST(LoggingDeath, BfLogLevelSilentSuppressesWarnings)
{
    // threadsafe style re-executes the binary, so the child process
    // evaluates warningsEnabled()'s cached getenv under the modified
    // environment.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("BF_LOG_LEVEL", "silent", 1);
            warn("this must not appear");
            std::exit(warningsEnabled() ? 2 : 0);
        },
        ::testing::ExitedWithCode(0), "");
}

} // namespace
} // namespace bigfish
