/**
 * @file
 * Tests of the content-addressed stage cache (core/stage_cache.hh):
 * payload round-trip bit-exactness through the featurized codec,
 * hit/miss/eviction accounting, fingerprint invalidation via
 * stageFingerprint (core/stage.hh), corrupted-entry fallback, and
 * concurrent-writer safety under the deterministic-payload contract.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "core/stage.hh"
#include "core/stage_cache.hh"

namespace bigfish::core {
namespace {

namespace fs = std::filesystem;

/** A fresh empty cache directory unique to @p leaf. */
std::string
freshDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "bf_stage_cache_" + leaf;
    fs::remove_all(dir);
    return dir;
}

/** Opens a cache at a fresh directory, failing the test on error. */
StageCache
openFresh(const std::string &leaf)
{
    auto opened = StageCache::open(freshDir(leaf));
    EXPECT_TRUE(opened.isOk()) << opened.status().message();
    return std::move(opened).valueOrDie();
}

/** A deterministic dataset with awkward doubles (negative zero, inexact
 *  sums, tiny magnitudes) to stress the hexfloat round-trip. */
ml::Dataset
makeDataset(std::uint64_t seed, std::size_t rows, std::size_t cols)
{
    Rng rng(seed);
    ml::Dataset data;
    data.numClasses = 7;
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> x(cols);
        for (std::size_t j = 0; j < cols; ++j)
            x[j] = rng.normal(0.0, 1.0) * 1e-3;
        if (!x.empty())
            x[0] = (i % 2 == 0) ? -0.0 : 0.1 + 0.2; // inexact sum
        data.add(std::move(x), static_cast<Label>(i % 7));
    }
    return data;
}

FeaturizedEntry
makeEntry(std::uint64_t seed, bool open_world)
{
    FeaturizedEntry entry;
    entry.closedWorld = makeDataset(seed, 11, 13);
    entry.hasOpenWorld = open_world;
    if (open_world)
        entry.openWorld = makeDataset(seed + 1, 5, 13);
    entry.droppedTraces = 3;
    entry.collectedTraces = 220;
    return entry;
}

void
expectDatasetsBitEqual(const ml::Dataset &got, const ml::Dataset &want)
{
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.numClasses, want.numClasses);
    ASSERT_EQ(got.labels, want.labels);
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got.features[i].size(), want.features[i].size());
        for (std::size_t j = 0; j < got.features[i].size(); ++j) {
            // Bit-level comparison: -0.0 == 0.0 under operator==, but
            // the replay contract is bitwise identity.
            std::uint64_t gbits = 0, wbits = 0;
            static_assert(sizeof(double) == sizeof(std::uint64_t));
            std::memcpy(&gbits, &got.features[i][j], sizeof(gbits));
            std::memcpy(&wbits, &want.features[i][j], sizeof(wbits));
            EXPECT_EQ(gbits, wbits) << "row " << i << " col " << j;
        }
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

TEST(StageCache, MissThenStoreThenHitRoundTripsBitExactly)
{
    StageCache cache = openFresh("roundtrip");

    const std::uint64_t key = 0x1234'5678'9abc'def0ULL;
    EXPECT_FALSE(cache.lookup("featurized", key).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);

    const FeaturizedEntry entry = makeEntry(42, /*open_world=*/true);
    ASSERT_TRUE(
        cache.put("featurized", key, encodeFeaturized(entry)).isOk());
    EXPECT_EQ(cache.stats().stores, 1u);

    const auto payload = cache.lookup("featurized", key);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(cache.stats().hits, 1u);
    const auto hit = decodeFeaturized(*payload);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->droppedTraces, entry.droppedTraces);
    EXPECT_EQ(hit->collectedTraces, entry.collectedTraces);
    EXPECT_TRUE(hit->hasOpenWorld);
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
    expectDatasetsBitEqual(hit->openWorld, entry.openWorld);
}

TEST(StageCache, ClosedWorldOnlyEntryOmitsOpenSection)
{
    StageCache cache = openFresh("closed_only");
    const std::uint64_t key = 7;
    const FeaturizedEntry entry = makeEntry(9, /*open_world=*/false);
    ASSERT_TRUE(
        cache.put("featurized", key, encodeFeaturized(entry)).isOk());
    const auto payload = cache.lookup("featurized", key);
    ASSERT_TRUE(payload.has_value());
    const auto hit = decodeFeaturized(*payload);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->hasOpenWorld);
    EXPECT_EQ(hit->openWorld.size(), 0u);
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
}

TEST(StageCache, FoldScoresRoundTripBitExactly)
{
    StageCache cache = openFresh("scores");
    ml::FoldScores fold;
    Rng rng(17);
    for (int row = 0; row < 9; ++row) {
        std::vector<double> scores(5);
        for (auto &s : scores)
            s = rng.normal(0.0, 1.0);
        scores[0] = row % 2 == 0 ? -0.0 : 0.1 + 0.2;
        fold.scores.push_back(std::move(scores));
        fold.truths.push_back(static_cast<Label>(row % 5));
        fold.predictions.push_back(static_cast<Label>((row + 1) % 5));
    }
    ASSERT_TRUE(cache.put("scores", 21, encodeFoldScores(fold)).isOk());
    const auto payload = cache.lookup("scores", 21);
    ASSERT_TRUE(payload.has_value());
    const auto hit = decodeFoldScores(*payload);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->truths, fold.truths);
    EXPECT_EQ(hit->predictions, fold.predictions);
    ASSERT_EQ(hit->scores.size(), fold.scores.size());
    for (std::size_t i = 0; i < fold.scores.size(); ++i) {
        ASSERT_EQ(hit->scores[i].size(), fold.scores[i].size());
        for (std::size_t j = 0; j < fold.scores[i].size(); ++j) {
            std::uint64_t gbits = 0, wbits = 0;
            std::memcpy(&gbits, &hit->scores[i][j], sizeof(gbits));
            std::memcpy(&wbits, &fold.scores[i][j], sizeof(wbits));
            EXPECT_EQ(gbits, wbits) << "row " << i << " col " << j;
        }
    }
}

TEST(StageCache, FingerprintChangesWithEveryInput)
{
    // Any change to a stage's name, canonical config text or upstream
    // fingerprints must address a different entry — that is the whole
    // invalidation story: stale entries are never *found*.
    const std::uint64_t up[] = {0x11ULL, 0x22ULL};
    const std::uint64_t base = stageFingerprint("featurize", "len=256\n", up);
    EXPECT_NE(base, stageFingerprint("featurize2", "len=256\n", up));
    EXPECT_NE(base, stageFingerprint("featurize", "len=255\n", up));
    const std::uint64_t other_up[] = {0x11ULL, 0x23ULL};
    EXPECT_NE(base, stageFingerprint("featurize", "len=256\n", other_up));
    const std::uint64_t swapped[] = {0x22ULL, 0x11ULL};
    EXPECT_NE(base, stageFingerprint("featurize", "len=256\n", swapped));
    const std::uint64_t fewer[] = {0x11ULL};
    EXPECT_NE(base, stageFingerprint("featurize", "len=256\n", fewer));
    // And the function itself is deterministic.
    EXPECT_EQ(base, stageFingerprint("featurize", "len=256\n", up));
}

TEST(StageCache, DifferentKeyOrKindMissesDespiteStoredEntry)
{
    StageCache cache = openFresh("invalidation");
    ASSERT_TRUE(
        cache.put("featurized", 1, encodeFeaturized(makeEntry(1, true)))
            .isOk());
    EXPECT_FALSE(cache.lookup("featurized", 2).has_value());
    EXPECT_FALSE(cache.lookup("model", 1).has_value());
    EXPECT_TRUE(cache.lookup("featurized", 1).has_value());
}

TEST(StageCache, CorruptedEntryIsRemovedAndMisses)
{
    StageCache cache = openFresh("corrupt");
    const std::uint64_t key = 3;
    ASSERT_TRUE(
        cache.put("featurized", key,
                    encodeFeaturized(makeEntry(3, false)))
            .isOk());

    // Flip one payload byte; the CRC trailer must catch it.
    const std::string path = cache.entryPath("featurized", key);
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 100u);
    content[content.size() / 2] ^= 0x20;
    writeFile(path, content);

    EXPECT_FALSE(cache.lookup("featurized", key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // The poisoned file is gone, so the next run re-stores cleanly.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(
        cache.put("featurized", key,
                    encodeFeaturized(makeEntry(3, false)))
            .isOk());
    EXPECT_TRUE(cache.lookup("featurized", key).has_value());
}

TEST(StageCache, TruncatedEntryIsAMiss)
{
    StageCache cache = openFresh("torn");
    const std::uint64_t key = 4;
    ASSERT_TRUE(
        cache.put("featurized", key,
                    encodeFeaturized(makeEntry(4, true)))
            .isOk());

    // Simulate a torn write: keep only the first half of the file.
    const std::string path = cache.entryPath("featurized", key);
    const std::string content = readFile(path);
    writeFile(path, content.substr(0, content.size() / 2));

    EXPECT_FALSE(cache.lookup("featurized", key).has_value());
    EXPECT_FALSE(fs::exists(path));
}

TEST(StageCache, UnframeRejectsKindOrKeyMismatch)
{
    // An entry framed under one (kind, key) must not validate under
    // another even if the bytes are intact (guards renamed files).
    const std::string text = StageCache::frame("model", 11, "payload\n");
    std::string payload;
    EXPECT_TRUE(StageCache::unframe(text, "model", 11, payload));
    EXPECT_EQ(payload, "payload\n");
    EXPECT_FALSE(StageCache::unframe(text, "model", 12, payload));
    EXPECT_FALSE(StageCache::unframe(text, "scores", 11, payload));
}

TEST(StageCache, EvictRemovesOldestBeyondBudget)
{
    StageCache cache = openFresh("evict");
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 6; ++i) {
        keys.push_back(i);
        ASSERT_TRUE(cache
                        .put("featurized", i,
                               encodeFeaturized(makeEntry(i, false)))
                        .isOk());
        // Distinct mtimes so eviction order is the store order even on
        // coarse-granularity filesystems.
        const std::string path = cache.entryPath("featurized", i);
        const auto stamp = fs::last_write_time(path);
        fs::last_write_time(path, stamp + std::chrono::seconds(i));
    }

    EXPECT_EQ(cache.evict(6), 0u); // within budget: no-op
    EXPECT_EQ(cache.evict(4), 2u); // oldest two go
    EXPECT_EQ(cache.stats().evicted, 2u);
    EXPECT_FALSE(fs::exists(cache.entryPath("featurized", keys[0])));
    EXPECT_FALSE(fs::exists(cache.entryPath("featurized", keys[1])));
    for (std::size_t i = 2; i < keys.size(); ++i)
        EXPECT_TRUE(fs::exists(cache.entryPath("featurized", keys[i])))
            << i;
}

TEST(StageCache, HitRefreshesMtimeSoHotEntriesSurviveEviction)
{
    // Regression test: eviction ranks entries by mtime, and before
    // touch-on-hit a lookup left the mtime at store time — so the
    // *hottest* entry of a long-lived cache (stored first, hit on
    // every run) was always the first one evicted.
    StageCache cache = openFresh("touch_on_hit");
    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(cache
                        .put("featurized", i,
                               encodeFeaturized(makeEntry(i, false)))
                        .isOk());
        // Backdate into the past, store order = age order (oldest
        // first), so the touch below — which stamps "now" — must beat
        // every sibling on any filesystem granularity.
        const std::string path = cache.entryPath("featurized", i);
        const auto stamp = fs::last_write_time(path);
        fs::last_write_time(path,
                            stamp - std::chrono::seconds(100 - 10 * i));
    }

    // Hit the oldest-stored entry: the touch must move it past its
    // siblings' mtimes, or the assertion below would evict it.
    ASSERT_TRUE(cache.lookup("featurized", 0).has_value());
    const auto touched = fs::last_write_time(cache.entryPath("featurized", 0));
    for (std::uint64_t i = 1; i < 4; ++i)
        EXPECT_GT(touched,
                  fs::last_write_time(cache.entryPath("featurized", i)))
            << "entry " << i;

    // Evicting down to one entry must keep the hot key 0 and drop the
    // never-hit entries instead.
    EXPECT_EQ(cache.evict(1), 3u);
    EXPECT_TRUE(fs::exists(cache.entryPath("featurized", 0)));
    for (std::uint64_t i = 1; i < 4; ++i)
        EXPECT_FALSE(fs::exists(cache.entryPath("featurized", i))) << i;
}

TEST(StageCache, ConcurrentWritersOfSameKeyLeaveAValidEntry)
{
    // The pipeline's contract: concurrent writers race to write
    // *identical* bytes (collection is deterministic), so whichever
    // atomic rename lands last must leave a parseable, correct entry.
    const std::string dir = freshDir("concurrent");
    const std::uint64_t key = 6;
    const FeaturizedEntry entry = makeEntry(6, true);
    const std::string payload = encodeFeaturized(entry);

    ThreadPool pool(8);
    std::vector<int> ok(16, 0);
    pool.parallelFor(16, [&](std::size_t i) {
        auto opened = StageCache::open(dir);
        if (!opened.isOk())
            return;
        StageCache writer = std::move(opened).valueOrDie();
        if (writer.put("featurized", key, payload).isOk())
            ok[i] = 1;
    });
    for (std::size_t i = 0; i < ok.size(); ++i)
        EXPECT_EQ(ok[i], 1) << "writer " << i;

    StageCache cache = StageCache::open(dir).valueOrDie();
    const auto framed = cache.lookup("featurized", key);
    ASSERT_TRUE(framed.has_value());
    const auto hit = decodeFeaturized(*framed);
    ASSERT_TRUE(hit.has_value());
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
    expectDatasetsBitEqual(hit->openWorld, entry.openWorld);
}

} // namespace
} // namespace bigfish::core
