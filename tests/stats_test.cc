/**
 * @file
 * Unit tests for src/stats: descriptive statistics, Welch's t-test
 * (including the incomplete beta function), histograms, confusion
 * matrices and top-k accuracy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/confusion.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "stats/ttest.hh"

namespace bigfish::stats {
namespace {

TEST(Descriptive, MeanAndVariance)
{
    const std::vector<double> v = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_DOUBLE_EQ(variance(v), 1.25);
    EXPECT_NEAR(sampleVariance(v), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Descriptive, EmptyInputsAreSafe)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean(empty), 0.0);
    EXPECT_DOUBLE_EQ(variance(empty), 0.0);
    EXPECT_DOUBLE_EQ(minValue(empty), 0.0);
    EXPECT_DOUBLE_EQ(maxValue(empty), 0.0);
    EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
}

TEST(Descriptive, MinMaxQuantile)
{
    const std::vector<double> v = {5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(minValue(v), 1.0);
    EXPECT_DOUBLE_EQ(maxValue(v), 9.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 4.0); // Between 3 and 5.
}

TEST(Descriptive, PearsonPerfectCorrelation)
{
    const std::vector<double> a = {1, 2, 3, 4, 5};
    const std::vector<double> b = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> c = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Descriptive, PearsonConstantSeriesIsZero)
{
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> b = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Descriptive, PearsonMismatchedLengthIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Descriptive, NormalizeByMax)
{
    const auto out = normalizeByMax({2, 4, 8});
    EXPECT_DOUBLE_EQ(out[0], 0.25);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(Descriptive, ZscoreHasZeroMeanUnitVar)
{
    const auto out = zscore({1, 2, 3, 4, 5});
    EXPECT_NEAR(mean(out), 0.0, 1e-12);
    EXPECT_NEAR(variance(out), 1.0, 1e-12);
}

TEST(Descriptive, ZscoreConstantSeriesIsZeros)
{
    const auto out = zscore({3, 3, 3});
    for (double v : out)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Descriptive, ElementwiseMeanTruncatesToShortest)
{
    const auto out = elementwiseMean({{1, 2, 3}, {3, 4}});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(Descriptive, DownsamplePreservesMean)
{
    std::vector<double> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    const auto out = downsample(v, 10);
    ASSERT_EQ(out.size(), 10u);
    EXPECT_NEAR(mean(out), mean(v), 1e-9);
    // First bucket averages 0..9.
    EXPECT_NEAR(out[0], 4.5, 1e-12);
}

TEST(Descriptive, DownsampleShortInputInterpolates)
{
    const auto out = downsample({1.0, 2.0}, 4);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_NEAR(out[1], 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(out[2], 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(out[3], 2.0);
}

TEST(Descriptive, DownsampleSingleValueBroadcasts)
{
    const auto out = downsample({7.0}, 3);
    ASSERT_EQ(out.size(), 3u);
    for (double v : out)
        EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(IncompleteBeta, MatchesKnownValues)
{
    // I_x(1,1) = x.
    EXPECT_NEAR(regularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-9);
    // I_x(a,b) + I_{1-x}(b,a) = 1.
    const double v = regularizedIncompleteBeta(2.5, 3.5, 0.4);
    const double w = regularizedIncompleteBeta(3.5, 2.5, 0.6);
    EXPECT_NEAR(v + w, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2, 2, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2, 2, 1.0), 1.0);
}

TEST(StudentT, CdfSymmetry)
{
    EXPECT_NEAR(studentTCdf(0.0, 10), 0.5, 1e-9);
    EXPECT_NEAR(studentTCdf(2.0, 10) + studentTCdf(-2.0, 10), 1.0, 1e-9);
}

TEST(StudentT, KnownQuantile)
{
    // t = 2.228 is the 97.5th percentile of t with 10 dof.
    EXPECT_NEAR(studentTCdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(WelchTTest, IdenticalSamplesNotSignificant)
{
    const std::vector<double> a = {1.0, 1.1, 0.9, 1.0, 1.05};
    const auto r = welchTTest(a, a);
    EXPECT_NEAR(r.t, 0.0, 1e-12);
    EXPECT_GT(r.pTwoSided, 0.99);
}

TEST(WelchTTest, ClearlySeparatedSamplesSignificant)
{
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
        a.push_back(0.95 + 0.01 * (i % 3));
        b.push_back(0.80 + 0.01 * (i % 3));
    }
    const auto r = welchTTest(a, b);
    EXPECT_GT(r.t, 10.0);
    EXPECT_LT(r.pTwoSided, 1e-4);
}

TEST(WelchTTest, PaperTable1SignificanceShape)
{
    // Chrome/Linux closed world: 96.6 +/- 0.8 vs 91.4 +/- 1.2 over 10
    // folds — the paper reports p < 0.0001.
    const auto r = welchTTestSummary(0.966, 0.008, 10, 0.914, 0.012, 10);
    EXPECT_LT(r.pTwoSided, 1e-4);
    // Tor top-1: 49.8 +/- 4.2 vs 46.7 +/- 4.1 — significant only at 0.05.
    const auto tor = welchTTestSummary(0.498, 0.042, 10, 0.467, 0.041, 10);
    EXPECT_LT(tor.pTwoSided, 0.2);
    EXPECT_GT(tor.pTwoSided, 1e-4);
}

TEST(WelchTTest, TooFewSamplesReturnsNeutral)
{
    const auto r = welchTTest({1.0}, {2.0});
    EXPECT_DOUBLE_EQ(r.pTwoSided, 1.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0);  // Clamps into bin 0.
    h.add(100.0); // Clamps into bin 9.
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[9], 2u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.5);
}

TEST(Histogram, ModeAndTailFraction)
{
    Histogram h(0.0, 4.0, 4);
    h.addAll({0.5, 1.5, 1.6, 1.7, 3.5});
    EXPECT_EQ(h.modeBin(), 1u);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(1.0), 0.8);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.addAll({0.5, 0.6, 1.5});
    const std::string out = h.render("us");
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("us"), std::string::npos);
}

TEST(Confusion, AccuracyAndRecall)
{
    ConfusionMatrix m(3);
    m.add(0, 0);
    m.add(0, 1);
    m.add(1, 1);
    m.add(2, 2);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(m.recall(0), 0.5);
    EXPECT_DOUBLE_EQ(m.recall(1), 1.0);
    EXPECT_EQ(m.at(0, 1), 1u);
    EXPECT_EQ(m.total(), 4u);
}

TEST(Confusion, ReportNamesRecallAndConfusion)
{
    ConfusionMatrix m(3);
    m.add(0, 0);
    m.add(0, 0);
    m.add(0, 1);
    m.add(1, 1);
    m.add(2, 2);
    const std::string report = renderClassificationReport(
        m, {"nytimes.com", "amazon.com", "weather.com"});
    EXPECT_NE(report.find("nytimes.com"), std::string::npos);
    EXPECT_NE(report.find("66.7%"), std::string::npos); // class 0 recall
    EXPECT_NE(report.find("amazon.com (1)"), std::string::npos);
    EXPECT_NE(report.find("overall accuracy: 80.0%"), std::string::npos);
}

TEST(Confusion, ReportFallsBackToNumericLabels)
{
    ConfusionMatrix m(2);
    m.add(0, 0);
    m.add(1, 0);
    const std::string report = renderClassificationReport(m);
    EXPECT_NE(report.find("class 0"), std::string::npos);
    EXPECT_NE(report.find("class 1"), std::string::npos);
}

TEST(TopK, Top1MatchesArgmax)
{
    const std::vector<std::vector<double>> scores = {
        {0.7, 0.2, 0.1}, {0.1, 0.8, 0.1}, {0.3, 0.4, 0.3}};
    const std::vector<Label> truths = {0, 1, 0};
    EXPECT_NEAR(topKAccuracy(scores, truths, 1), 2.0 / 3.0, 1e-12);
}

TEST(TopK, LargerKIsMonotone)
{
    const std::vector<std::vector<double>> scores = {
        {0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}, {0.4, 0.35, 0.25}};
    const std::vector<Label> truths = {2, 0, 1};
    const double t1 = topKAccuracy(scores, truths, 1);
    const double t2 = topKAccuracy(scores, truths, 2);
    const double t3 = topKAccuracy(scores, truths, 3);
    EXPECT_LE(t1, t2);
    EXPECT_LE(t2, t3);
    EXPECT_DOUBLE_EQ(t3, 1.0);
}

TEST(OpenWorld, MetricsSplitCorrectly)
{
    // Labels: 0,1 sensitive; 2 = non-sensitive class.
    const std::vector<Label> truths = {0, 1, 2, 2};
    const std::vector<Label> preds = {0, 2, 2, 1};
    const auto m = openWorldMetrics(truths, preds, 2);
    EXPECT_DOUBLE_EQ(m.sensitiveAccuracy, 0.5);
    EXPECT_DOUBLE_EQ(m.nonSensitiveAccuracy, 0.5);
    EXPECT_DOUBLE_EQ(m.combinedAccuracy, 0.5);
}

TEST(OpenWorld, AllCorrect)
{
    const std::vector<Label> truths = {0, 1, 2};
    const auto m = openWorldMetrics(truths, truths, 2);
    EXPECT_DOUBLE_EQ(m.sensitiveAccuracy, 1.0);
    EXPECT_DOUBLE_EQ(m.nonSensitiveAccuracy, 1.0);
    EXPECT_DOUBLE_EQ(m.combinedAccuracy, 1.0);
}

} // namespace
} // namespace bigfish::stats
