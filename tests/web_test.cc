/**
 * @file
 * Unit tests for src/web: site signatures, workload realization, the
 * closed-world catalog, browser profiles and attacker-side runtime
 * effects.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/synthesizer.hh"
#include "web/browser.hh"
#include "web/catalog.hh"
#include "web/session.hh"
#include "web/site.hh"

namespace bigfish::web {
namespace {

TEST(PhaseRates, TypesEmphasizeDifferentSubsystems)
{
    SiteSignature sig;
    const auto net = phaseRates(PhaseType::NetworkFetch, 1.0, sig);
    const auto render = phaseRates(PhaseType::Render, 1.0, sig);
    const auto script = phaseRates(PhaseType::Script, 1.0, sig);
    EXPECT_GT(net.netRxRate, render.netRxRate);
    EXPECT_GT(render.gfxRate, net.gfxRate);
    EXPECT_GT(script.tlbRate, net.tlbRate);
}

TEST(PhaseRates, IntensityScalesLinearly)
{
    SiteSignature sig;
    const auto one = phaseRates(PhaseType::NetworkFetch, 1.0, sig);
    const auto two = phaseRates(PhaseType::NetworkFetch, 2.0, sig);
    EXPECT_NEAR(two.netRxRate, 2.0 * one.netRxRate, 1e-9);
    EXPECT_NEAR(two.cpuLoad, 2.0 * one.cpuLoad, 1e-9);
}

TEST(PhaseRates, BiasesApply)
{
    SiteSignature sig;
    sig.reschedBias = 3.0;
    const auto biased = phaseRates(PhaseType::Script, 1.0, sig);
    sig.reschedBias = 1.0;
    const auto plain = phaseRates(PhaseType::Script, 1.0, sig);
    EXPECT_NEAR(biased.reschedRate, 3.0 * plain.reschedRate, 1e-9);
    EXPECT_NEAR(biased.tlbRate, 3.0 * plain.tlbRate, 1e-9);
}

TEST(RealizeWorkload, ProducesPhysicalTimeline)
{
    Rng rng(1);
    const auto sig = nytimesSignature(0);
    const auto timeline =
        realizeWorkload(sig, 15 * kSec, 1.0, RealizationNoise{}, rng);
    EXPECT_EQ(timeline.duration(), 15 * kSec);
    for (std::size_t i = 0; i < timeline.numIntervals(); ++i) {
        const auto &s = timeline.at(i);
        EXPECT_GE(s.netRxRate, 0.0);
        EXPECT_GE(s.cacheOccupancy, 0.0);
        EXPECT_LE(s.cacheOccupancy, 1.0);
    }
}

TEST(RealizeWorkload, NytimesFrontLoaded)
{
    // Figure 3/5: nytimes.com does nearly all its work in the first 4 s.
    Rng rng(2);
    const auto timeline = realizeWorkload(nytimesSignature(0), 15 * kSec,
                                          1.0, RealizationNoise{}, rng);
    double early = 0.0, late = 0.0;
    for (std::size_t i = 0; i < timeline.numIntervals(); ++i) {
        const auto &s = timeline.at(i);
        const double total = s.netRxRate + s.gfxRate + 100.0 * s.cpuLoad;
        if (static_cast<TimeNs>(i) * timeline.interval() < 4 * kSec)
            early += total;
        else
            late += total;
    }
    EXPECT_GT(early, late * 2);
}

TEST(RealizeWorkload, AmazonHasLateSpikes)
{
    Rng rng(3);
    const auto timeline = realizeWorkload(amazonSignature(0), 15 * kSec,
                                          1.0, RealizationNoise{}, rng);
    // Integrate activity over windows: jitter shifts spike starts by up
    // to a few hundred ms, so point probes would be flaky.
    auto window = [&](TimeNs lo, TimeNs hi) {
        double total = 0.0;
        for (TimeNs t = lo; t < hi; t += timeline.interval()) {
            const auto &s = timeline.at(timeline.indexAt(t));
            total += s.netRxRate + s.gfxRate;
        }
        return total / static_cast<double>((hi - lo) / timeline.interval());
    };
    // Spikes near 5 s and 10 s stand out against the quiet 7-8.5 s span.
    const double quiet = window(6800 * kMsec, 8600 * kMsec);
    EXPECT_GT(window(4500 * kMsec, 6200 * kMsec), quiet * 2);
    EXPECT_GT(window(9500 * kMsec, 11200 * kMsec), quiet * 2);
}

TEST(RealizeWorkload, WeatherIsReschedHeavy)
{
    Rng r1(4), r2(4);
    const auto weather = realizeWorkload(weatherSignature(0), 15 * kSec,
                                         1.0, RealizationNoise{}, r1);
    const auto nytimes = realizeWorkload(nytimesSignature(0), 15 * kSec,
                                         1.0, RealizationNoise{}, r2);
    double weather_resched = 0.0, nytimes_resched = 0.0;
    for (std::size_t i = 0; i < weather.numIntervals(); ++i) {
        weather_resched += weather.at(i).reschedRate;
        nytimes_resched += nytimes.at(i).reschedRate;
    }
    EXPECT_GT(weather_resched, nytimes_resched);
}

TEST(RealizeWorkload, LoadTimeScaleStretchesActivity)
{
    Rng r1(5), r2(5);
    const auto sig = nytimesSignature(0);
    const auto fast =
        realizeWorkload(sig, 50 * kSec, 1.0, RealizationNoise{}, r1);
    const auto slow =
        realizeWorkload(sig, 50 * kSec, 3.0, RealizationNoise{}, r2);
    // With 3x stretch, activity extends past 6 s where the 1x load is done.
    double fast_late = 0.0, slow_late = 0.0;
    for (std::size_t i = 0; i < fast.numIntervals(); ++i) {
        if (static_cast<TimeNs>(i) * fast.interval() > 7 * kSec) {
            fast_late += fast.at(i).netRxRate;
            slow_late += slow.at(i).netRxRate;
        }
    }
    EXPECT_GT(slow_late, fast_late);
}

TEST(RealizeWorkload, RunsVary)
{
    Rng r1(6), r2(7);
    const auto sig = amazonSignature(0);
    const auto a =
        realizeWorkload(sig, 15 * kSec, 1.0, RealizationNoise{}, r1);
    const auto b =
        realizeWorkload(sig, 15 * kSec, 1.0, RealizationNoise{}, r2);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.numIntervals(); ++i)
        diff += std::abs(a.at(i).netRxRate - b.at(i).netRxRate);
    EXPECT_GT(diff, 1.0);
}

TEST(RealizeWorkload, SameSeedReproduces)
{
    Rng r1(8), r2(8);
    const auto sig = amazonSignature(0);
    const auto a =
        realizeWorkload(sig, 15 * kSec, 1.0, RealizationNoise{}, r1);
    const auto b =
        realizeWorkload(sig, 15 * kSec, 1.0, RealizationNoise{}, r2);
    for (std::size_t i = 0; i < a.numIntervals(); ++i)
        EXPECT_DOUBLE_EQ(a.at(i).netRxRate, b.at(i).netRxRate);
}

TEST(SiteCatalog, UsesAppendixANames)
{
    const SiteCatalog catalog(100, 7);
    EXPECT_EQ(catalog.size(), 100);
    EXPECT_EQ(catalog.site(0).name, "1688.com");
    EXPECT_EQ(catalog.site(6).name, "amazon.com");
    // Names are unique within the first 100.
    std::set<std::string> names;
    for (int i = 0; i < catalog.size(); ++i)
        names.insert(catalog.site(i).name);
    EXPECT_EQ(names.size(), 100u);
}

TEST(SiteCatalog, AppendixAListHas101Entries)
{
    // 100 Alexa sites plus weather.com (the Figures 3-5 example).
    EXPECT_EQ(appendixASiteNames().size(), 101u);
}

TEST(SiteCatalog, HandCraftedSitesAreWired)
{
    const SiteCatalog catalog(101, 7);
    bool found_amazon = false, found_nytimes = false, found_weather = false;
    for (int i = 0; i < catalog.size(); ++i) {
        const auto &site = catalog.site(i);
        if (site.name == "amazon.com") {
            found_amazon = true;
            EXPECT_FALSE(site.spikes.empty());
        }
        if (site.name == "nytimes.com")
            found_nytimes = true;
        if (site.name == "weather.com") {
            found_weather = true;
            EXPECT_GT(site.reschedBias, 1.5);
        }
    }
    EXPECT_TRUE(found_amazon);
    EXPECT_TRUE(found_nytimes);
    EXPECT_TRUE(found_weather);
}

TEST(SiteCatalog, SameSeedSameCatalog)
{
    const SiteCatalog a(20, 9), b(20, 9);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(a.site(i).phases.size(), b.site(i).phases.size());
        for (std::size_t p = 0; p < a.site(i).phases.size(); ++p) {
            EXPECT_EQ(a.site(i).phases[p].start, b.site(i).phases[p].start);
            EXPECT_DOUBLE_EQ(a.site(i).phases[p].intensity,
                             b.site(i).phases[p].intensity);
        }
    }
}

TEST(SiteCatalog, DifferentSeedsDifferentSites)
{
    const SiteCatalog a(20, 9), b(20, 10);
    int identical = 0;
    for (int i = 0; i < 20; ++i) {
        if (a.site(i).phases.size() == b.site(i).phases.size() &&
            !a.site(i).phases.empty() &&
            a.site(i).phases.back().start == b.site(i).phases.back().start)
            ++identical;
    }
    EXPECT_LT(identical, 5);
}

TEST(SiteCatalog, SitesAreMutuallyDistinct)
{
    const SiteCatalog catalog(30, 11);
    // Compare phase programs pairwise; generated sites should differ.
    int identical_pairs = 0;
    for (int i = 0; i < 30; ++i) {
        for (int j = i + 1; j < 30; ++j) {
            const auto &a = catalog.site(i);
            const auto &b = catalog.site(j);
            if (a.phases.size() == b.phases.size() &&
                a.phases.back().start == b.phases.back().start)
                ++identical_pairs;
        }
    }
    EXPECT_EQ(identical_pairs, 0);
}

TEST(SiteCatalog, OpenWorldSitesAreFreshAndDeterministic)
{
    const SiteCatalog catalog(10, 3);
    const auto a0 = catalog.openWorldSite(0);
    const auto a0_again = catalog.openWorldSite(0);
    const auto a1 = catalog.openWorldSite(1);
    EXPECT_EQ(a0.phases.size(), a0_again.phases.size());
    EXPECT_EQ(a0.id, catalog.size());
    EXPECT_NE(a0.name, a1.name);
}

TEST(SiteCatalog, ExtendsBeyondAppendixA)
{
    const SiteCatalog catalog(150, 5);
    EXPECT_EQ(catalog.size(), 150);
    // Cycled names get a numeric suffix.
    EXPECT_NE(catalog.site(120).name.find('#'), std::string::npos);
}

TEST(BrowsingSession, RandomSessionRespectsBounds)
{
    const SiteCatalog catalog(10, 7);
    Rng rng(1);
    const auto session = BrowsingSession::random(catalog, 5, 10 * kSec,
                                                 20 * kSec, rng);
    ASSERT_EQ(session.steps.size(), 5u);
    for (const auto &step : session.steps) {
        EXPECT_GE(step.site, 0);
        EXPECT_LT(step.site, 10);
        EXPECT_GE(step.dwell, 10 * kSec);
        EXPECT_LE(step.dwell, 20 * kSec);
    }
    EXPECT_EQ(session.duration(),
              session.navigationTimes().back() +
                  session.steps.back().dwell);
}

TEST(BrowsingSession, NavigationTimesAreCumulative)
{
    BrowsingSession session;
    session.steps = {{0, 10 * kSec}, {1, 15 * kSec}, {2, 12 * kSec}};
    const auto times = session.navigationTimes();
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[0], 0);
    EXPECT_EQ(times[1], 10 * kSec);
    EXPECT_EQ(times[2], 25 * kSec);
    EXPECT_EQ(session.duration(), 37 * kSec);
}

TEST(RealizeSession, ActivityAppearsAtNavigations)
{
    const SiteCatalog catalog(6, 7);
    BrowsingSession session;
    session.steps = {{0, 20 * kSec}, {1, 20 * kSec}};
    Rng rng(3);
    const auto timeline =
        realizeSession(session, catalog, 1.0, RealizationNoise{}, rng);
    EXPECT_EQ(timeline.duration(), 40 * kSec);
    // Each visit front-loads its activity: the first seconds after each
    // navigation are busier than the tail of the dwell.
    auto window = [&](TimeNs lo, TimeNs hi) {
        double total = 0.0;
        for (TimeNs t = lo; t < hi; t += timeline.interval())
            total += timeline.at(timeline.indexAt(t)).netRxRate;
        return total;
    };
    EXPECT_GT(window(0, 5 * kSec), window(14 * kSec, 19 * kSec));
    EXPECT_GT(window(20 * kSec, 25 * kSec),
              window(34 * kSec, 39 * kSec));
}

TEST(BrowserProfile, TimerResolutionsMatchTable1)
{
    EXPECT_EQ(BrowserProfile::chrome().timer.resolution, 100 * kUsec);
    EXPECT_EQ(BrowserProfile::chrome().timer.kind,
              timers::TimerKind::Jittered);
    EXPECT_EQ(BrowserProfile::firefox().timer.resolution, kMsec);
    EXPECT_EQ(BrowserProfile::firefox().timer.kind,
              timers::TimerKind::Jittered);
    EXPECT_EQ(BrowserProfile::safari().timer.resolution, kMsec);
    EXPECT_EQ(BrowserProfile::safari().timer.kind,
              timers::TimerKind::Quantized);
    EXPECT_EQ(BrowserProfile::torBrowser().timer.resolution, 100 * kMsec);
}

TEST(BrowserProfile, TorUsesLongTracesAndSlowLoads)
{
    const auto tor = BrowserProfile::torBrowser();
    EXPECT_EQ(tor.traceDuration, 50 * kSec);
    EXPECT_GT(tor.loadTimeScale, 2.0);
    EXPECT_EQ(BrowserProfile::chrome().traceDuration, 15 * kSec);
}

TEST(BrowserProfile, NativeProfilesArePrecise)
{
    EXPECT_EQ(BrowserProfile::nativePython().timer.kind,
              timers::TimerKind::Precise);
    EXPECT_EQ(BrowserProfile::nativeRust().timer.kind,
              timers::TimerKind::Precise);
    EXPECT_LT(BrowserProfile::nativeRust().runtimeNoiseSigma,
              BrowserProfile::chrome().runtimeNoiseSigma);
}

TEST(ApplyBrowserRuntime, AddsStallsAndJitter)
{
    sim::RunTimeline timeline;
    timeline.duration = kSec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(100, 1.0);
    timeline.occupancy = std::vector<double>(100, 0.0);

    BrowserProfile browser = BrowserProfile::chrome();
    browser.stallRate = 50.0; // Force stalls for the test.
    Rng rng(12);
    applyBrowserRuntime(timeline, browser, rng);

    EXPECT_FALSE(timeline.stolen.empty());
    for (const auto &s : timeline.stolen) {
        EXPECT_EQ(s.kind, sim::InterruptKind::Preemption);
        EXPECT_LT(s.end(), timeline.duration + 1);
    }
    bool jittered = false;
    for (double f : timeline.iterCostFactor)
        if (f != 1.0)
            jittered = true;
    EXPECT_TRUE(jittered);
}

TEST(ApplyBrowserRuntime, KeepsTimelineSorted)
{
    sim::RunTimeline timeline;
    timeline.duration = kSec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(100, 1.0);
    timeline.occupancy = std::vector<double>(100, 0.0);
    timeline.stolen.push_back({500 * kMsec, kMsec,
                               sim::InterruptKind::TimerTick});

    BrowserProfile browser = BrowserProfile::torBrowser();
    browser.stallRate = 30.0;
    Rng rng(13);
    applyBrowserRuntime(timeline, browser, rng);
    for (std::size_t i = 1; i < timeline.stolen.size(); ++i)
        EXPECT_GE(timeline.stolen[i].arrival,
                  timeline.stolen[i - 1].end());
}

} // namespace
} // namespace bigfish::web
