/**
 * @file
 * Unit tests for src/ml: matrix algebra, finite-difference gradient
 * checks for every layer (including full BPTT through the LSTM), the
 * Adam optimizer, dataset splitting, and classifier learning on
 * synthetic problems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include <sstream>

#include "ml/classifier.hh"
#include "ml/conv.hh"
#include "ml/dataset.hh"
#include "ml/evaluation.hh"
#include "ml/gru.hh"
#include "ml/lstm.hh"
#include "ml/network.hh"
#include "ml/serialize.hh"

namespace bigfish::ml {
namespace {

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    m(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, FillAndScale)
{
    Matrix m(2, 2);
    m.fill(3.0f);
    m *= 2.0f;
    EXPECT_DOUBLE_EQ(m.sum(), 24.0);
    m.zero();
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Matrix, AdditionShapeChecked)
{
    Matrix a(2, 2), b(2, 2);
    a.fill(1.0f);
    b.fill(2.0f);
    a += b;
    EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
}

TEST(Matrix, MatmulKnownResult)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Matrix, TransposedMultipliesAgree)
{
    Rng rng(1);
    Matrix a(4, 3), b(4, 2);
    a.randomize(rng, 1.0);
    b.randomize(rng, 1.0);
    // A^T B via matmulTransA must equal manual transpose.
    const Matrix c = matmulTransA(a, b);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j) {
            float expect = 0.0f;
            for (std::size_t k = 0; k < 4; ++k)
                expect += a(k, i) * b(k, j);
            EXPECT_NEAR(c(i, j), expect, 1e-5);
        }

    Matrix d(3, 5), e(2, 5);
    d.randomize(rng, 1.0);
    e.randomize(rng, 1.0);
    const Matrix f = matmulTransB(d, e);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j) {
            float expect = 0.0f;
            for (std::size_t k = 0; k < 5; ++k)
                expect += d(i, k) * e(j, k);
            EXPECT_NEAR(f(i, j), expect, 1e-5);
        }
}

/**
 * Finite-difference gradient check for one layer: perturbs inputs and
 * parameters and compares numerical and analytical gradients of a
 * scalar loss L = sum(w_out * output).
 */
void
checkGradients(Layer &layer, const Matrix &input, double tolerance = 2e-2)
{
    Rng rng(99);
    Matrix out = layer.forward(input, true);
    Matrix loss_weights(out.rows(), out.cols());
    loss_weights.randomize(rng, 1.0);

    auto loss_of = [&](const Matrix &in) {
        // NOTE: dropout and similar layers must be deterministic between
        // calls for this to be valid; tests pass train=false... but we
        // need train=true paths. The layers under test here are
        // deterministic in training mode.
        Matrix o = layer.forward(in, true);
        double l = 0.0;
        for (std::size_t i = 0; i < o.size(); ++i)
            l += o.data()[i] * loss_weights.data()[i];
        return l;
    };

    // Analytical gradients.
    layer.zeroGrads();
    layer.forward(input, true);
    const Matrix grad_in = layer.backward(loss_weights);

    // Numerical input gradient (spot-check a subset of coordinates).
    const double eps = 1e-3;
    Matrix perturbed = input;
    for (std::size_t i = 0; i < std::min<std::size_t>(input.size(), 24);
         ++i) {
        const std::size_t idx = i * std::max<std::size_t>(
                                        input.size() / 24, 1);
        if (idx >= input.size())
            break;
        const float orig = perturbed.data()[idx];
        perturbed.data()[idx] = orig + static_cast<float>(eps);
        const double plus = loss_of(perturbed);
        perturbed.data()[idx] = orig - static_cast<float>(eps);
        const double minus = loss_of(perturbed);
        perturbed.data()[idx] = orig;
        const double numeric = (plus - minus) / (2 * eps);
        EXPECT_NEAR(grad_in.data()[idx], numeric,
                    tolerance * (1.0 + std::fabs(numeric)))
            << "input coordinate " << idx;
    }

    // Numerical parameter gradients (spot-check).
    auto params = layer.params();
    auto grads = layer.grads();
    for (std::size_t p = 0; p < params.size(); ++p) {
        Matrix *param = params[p];
        for (std::size_t i = 0;
             i < std::min<std::size_t>(param->size(), 12); ++i) {
            const std::size_t idx =
                i * std::max<std::size_t>(param->size() / 12, 1);
            if (idx >= param->size())
                break;
            const float orig = param->data()[idx];
            param->data()[idx] = orig + static_cast<float>(eps);
            const double plus = loss_of(input);
            param->data()[idx] = orig - static_cast<float>(eps);
            const double minus = loss_of(input);
            param->data()[idx] = orig;
            const double numeric = (plus - minus) / (2 * eps);
            EXPECT_NEAR(grads[p]->data()[idx], numeric,
                        tolerance * (1.0 + std::fabs(numeric)))
                << "param " << p << " coordinate " << idx;
        }
    }
}

TEST(GradCheck, Dense)
{
    Rng rng(2);
    Dense layer(6, 4, rng);
    Matrix input(6, 1);
    input.randomize(rng, 1.0);
    checkGradients(layer, input);
}

TEST(GradCheck, Conv1D)
{
    Rng rng(3);
    Conv1D layer(2, 3, 4, 2, rng);
    Matrix input(2, 20);
    input.randomize(rng, 1.0);
    checkGradients(layer, input);
}

TEST(GradCheck, Lstm)
{
    Rng rng(4);
    Lstm layer(3, 5, rng);
    Matrix input(3, 7);
    input.randomize(rng, 0.5);
    checkGradients(layer, input, 3e-2);
}

TEST(GradCheck, Gru)
{
    Rng rng(14);
    Gru layer(3, 5, rng);
    Matrix input(3, 7);
    input.randomize(rng, 0.5);
    checkGradients(layer, input, 3e-2);
}

TEST(Gru, FinalStateShapeAndDeterminism)
{
    Rng rng(15);
    Gru layer(4, 6, rng);
    Matrix input(4, 9);
    input.randomize(rng, 1.0);
    const Matrix a = layer.forward(input, false);
    const Matrix b = layer.forward(input, false);
    EXPECT_EQ(a.rows(), 6u);
    EXPECT_EQ(a.cols(), 1u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(GradCheck, ReLU)
{
    Rng rng(5);
    ReLU layer;
    Matrix input(4, 6);
    input.randomize(rng, 1.0);
    // Nudge values away from the kink at zero.
    for (std::size_t i = 0; i < input.size(); ++i)
        if (std::fabs(input.data()[i]) < 0.05f)
            input.data()[i] = 0.1f;
    checkGradients(layer, input);
}

TEST(MaxPool, ForwardSelectsMaxima)
{
    MaxPool1D pool(2);
    Matrix in(1, 6, {1, 5, 2, 2, 9, 0});
    const Matrix out = pool.forward(in, true);
    ASSERT_EQ(out.cols(), 3u);
    EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(out(0, 2), 9.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax)
{
    MaxPool1D pool(2);
    Matrix in(1, 4, {1, 5, 9, 2});
    pool.forward(in, true);
    Matrix grad(1, 2, {10, 20});
    const Matrix grad_in = pool.backward(grad);
    EXPECT_FLOAT_EQ(grad_in(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad_in(0, 1), 10.0f);
    EXPECT_FLOAT_EQ(grad_in(0, 2), 20.0f);
    EXPECT_FLOAT_EQ(grad_in(0, 3), 0.0f);
}

TEST(Dropout, InferenceIsIdentity)
{
    Dropout layer(0.7, 42);
    Matrix in(3, 3);
    in.fill(2.0f);
    const Matrix out = layer.forward(in, false);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_FLOAT_EQ(out.data()[i], 2.0f);
}

TEST(Dropout, TrainingZeroesAndRescales)
{
    Dropout layer(0.5, 42);
    Matrix in(1, 1000);
    in.fill(1.0f);
    const Matrix out = layer.forward(in, true);
    int zeros = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out.data()[i] == 0.0f)
            ++zeros;
        else
            EXPECT_FLOAT_EQ(out.data()[i], 2.0f);
    }
    EXPECT_NEAR(zeros, 500, 70);
    // Expectation is preserved: mean ~= 1.
    EXPECT_NEAR(out.sum() / 1000.0, 1.0, 0.15);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Dropout layer(0.5, 7);
    Matrix in(1, 100);
    in.fill(1.0f);
    const Matrix out = layer.forward(in, true);
    Matrix grad(1, 100);
    grad.fill(1.0f);
    const Matrix grad_in = layer.backward(grad);
    for (std::size_t i = 0; i < 100; ++i) {
        if (out.data()[i] == 0.0f)
            EXPECT_FLOAT_EQ(grad_in.data()[i], 0.0f);
        else
            EXPECT_FLOAT_EQ(grad_in.data()[i], 2.0f);
    }
}

TEST(Flatten, RoundTrips)
{
    Flatten layer;
    Matrix in(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix out = layer.forward(in, true);
    EXPECT_EQ(out.rows(), 6u);
    EXPECT_EQ(out.cols(), 1u);
    const Matrix back = layer.backward(out);
    EXPECT_EQ(back.rows(), 2u);
    EXPECT_EQ(back.cols(), 3u);
    EXPECT_FLOAT_EQ(back(1, 2), 6.0f);
}

TEST(Softmax, ProbabilitiesSumToOne)
{
    Matrix logits(4, 1, {1.0f, 2.0f, 3.0f, 4.0f});
    const auto probs = SoftmaxCrossEntropy::probabilities(logits);
    double sum = 0.0;
    for (double p : probs)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(probs[3], probs[0]);
}

TEST(Softmax, NumericallyStableForLargeLogits)
{
    Matrix logits(2, 1, {1000.0f, 1001.0f});
    const auto probs = SoftmaxCrossEntropy::probabilities(logits);
    EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
    EXPECT_FALSE(std::isnan(probs[0]));
}

TEST(Softmax, LossAndGradientConsistent)
{
    Matrix logits(3, 1, {0.5f, -0.2f, 0.1f});
    const double base = SoftmaxCrossEntropy::loss(logits, 1);
    const Matrix grad = SoftmaxCrossEntropy::gradient(logits, 1);
    const double eps = 1e-3;
    for (int i = 0; i < 3; ++i) {
        Matrix plus = logits, minus = logits;
        plus(i, 0) += static_cast<float>(eps);
        minus(i, 0) -= static_cast<float>(eps);
        const double numeric = (SoftmaxCrossEntropy::loss(plus, 1) -
                                SoftmaxCrossEntropy::loss(minus, 1)) /
                               (2 * eps);
        EXPECT_NEAR(grad(i, 0), numeric, 1e-3);
    }
    EXPECT_GT(base, 0.0);
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize (x - 3)^2: gradient 2(x - 3).
    Matrix x(1, 1);
    Matrix g(1, 1);
    Adam adam(0.1);
    for (int i = 0; i < 500; ++i) {
        g(0, 0) = 2.0f * (x(0, 0) - 3.0f);
        adam.step({&x}, {&g});
    }
    EXPECT_NEAR(x(0, 0), 3.0f, 0.05);
}

TEST(Sequential, CollectsParams)
{
    Rng rng(6);
    Sequential net;
    net.add(std::make_unique<Dense>(4, 3, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Dense>(3, 2, rng));
    EXPECT_EQ(net.params().size(), 4u); // Two weight + two bias tensors.
    EXPECT_EQ(net.numParameters(), 4u * 3 + 3 + 3 * 2 + 2);
}

TEST(Dataset, AddAndSubset)
{
    Dataset d;
    d.add({1, 2}, 0);
    d.add({3, 4}, 2);
    d.add({5, 6}, 1);
    EXPECT_EQ(d.numClasses, 3);
    const Dataset s = d.subset({2, 0});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.labels[0], 1);
    EXPECT_DOUBLE_EQ(s.features[1][0], 1.0);
}

TEST(KFold, PartitionsExactly)
{
    const auto splits = kFoldSplits(100, 10, 0.1, 3);
    ASSERT_EQ(splits.size(), 10u);
    std::set<std::size_t> all_test;
    for (const auto &split : splits) {
        EXPECT_EQ(split.test.size(), 10u);
        for (std::size_t i : split.test)
            all_test.insert(i);
        // Train + validation + test cover everything exactly once.
        EXPECT_EQ(split.train.size() + split.validation.size() +
                      split.test.size(),
                  100u);
        std::set<std::size_t> fold_union(split.train.begin(),
                                         split.train.end());
        fold_union.insert(split.validation.begin(),
                          split.validation.end());
        fold_union.insert(split.test.begin(), split.test.end());
        EXPECT_EQ(fold_union.size(), 100u);
    }
    EXPECT_EQ(all_test.size(), 100u);
}

TEST(KFold, ValidationFractionRespected)
{
    const auto splits = kFoldSplits(100, 10, 0.1, 3);
    // 90 non-test samples, 10% validation = 9.
    EXPECT_EQ(splits[0].validation.size(), 9u);
    EXPECT_EQ(splits[0].train.size(), 81u);
}

/** Synthetic dataset: class determined by the location of a dip. */
Dataset
syntheticDataset(int classes, int per_class, std::size_t len,
                 std::uint64_t seed)
{
    Dataset d;
    Rng rng(seed);
    for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < per_class; ++i) {
            std::vector<double> x(len);
            for (std::size_t j = 0; j < len; ++j)
                x[j] = rng.normal(0.0, 0.3);
            const std::size_t at = len * c / classes;
            for (std::size_t j = at; j < at + len / classes && j < len; ++j)
                x[j] -= 2.0;
            d.add(std::move(x), c);
        }
    }
    return d;
}

TEST(Gru, LearnsAsRecurrentBackbone)
{
    // Swap the LSTM for a GRU in a tiny sequence classifier and check
    // it learns a separable problem end to end.
    const Dataset train = syntheticDataset(3, 20, 48, 16);
    Rng rng(17);
    Sequential net;
    net.add(std::make_unique<Conv1D>(1, 8, 4, 2, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool1D>(2));
    net.add(std::make_unique<Gru>(8, 12, rng));
    net.add(std::make_unique<Dense>(12, 3, rng));
    Adam adam(2e-3);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < 30; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        for (std::size_t i = 0; i < order.size();) {
            net.zeroGrads();
            const std::size_t end = std::min(i + 8, order.size());
            const std::size_t batch = end - i;
            for (; i < end; ++i) {
                Matrix in(1, 48);
                for (std::size_t k = 0; k < 48; ++k)
                    in(0, k) = static_cast<float>(
                        train.features[order[i]][k]);
                const Matrix logits = net.forward(in, true);
                net.backward(SoftmaxCrossEntropy::gradient(
                    logits, train.labels[order[i]]));
            }
            adam.step(net.params(), net.grads(),
                      1.0 / static_cast<double>(batch));
        }
    }
    int hits = 0;
    for (std::size_t i = 0; i < train.size(); ++i) {
        Matrix in(1, 48);
        for (std::size_t k = 0; k < 48; ++k)
            in(0, k) = static_cast<float>(train.features[i][k]);
        const auto probs =
            SoftmaxCrossEntropy::probabilities(net.forward(in, false));
        const Label pred = static_cast<Label>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
        if (pred == train.labels[i])
            ++hits;
    }
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(train.size()),
              0.9);
}

TEST(CnnLstm, LearnsSyntheticProblem)
{
    const Dataset train = syntheticDataset(4, 25, 128, 1);
    const Dataset val = syntheticDataset(4, 5, 128, 2);
    const Dataset test = syntheticDataset(4, 10, 128, 3);
    CnnLstmParams params;
    params.convFilters = 16;
    params.lstmUnits = 16;
    params.maxEpochs = 25;
    CnnLstmClassifier model(4, 128, params, 5);
    model.fit(train, val);
    EXPECT_GT(model.accuracy(test), 0.9);
}

TEST(CnnLstm, HistoryRecordsConvergence)
{
    const Dataset train = syntheticDataset(3, 20, 64, 50);
    const Dataset val = syntheticDataset(3, 5, 64, 51);
    CnnLstmParams params;
    params.convFilters = 8;
    params.lstmUnits = 8;
    params.maxEpochs = 15;
    params.patience = 15;
    CnnLstmClassifier model(3, 64, params, 52);
    model.fit(train, val);
    const auto &history = model.history();
    ASSERT_GE(history.size(), 5u);
    // Loss decreases substantially from the first to the best epoch.
    double best_loss = history.front().trainLoss;
    for (const auto &epoch : history)
        best_loss = std::min(best_loss, epoch.trainLoss);
    EXPECT_LT(best_loss, history.front().trainLoss * 0.5);
    for (const auto &epoch : history) {
        EXPECT_GE(epoch.valAccuracy, 0.0);
        EXPECT_LE(epoch.valAccuracy, 1.0);
    }
}

TEST(CnnLstm, ScoresAreDistribution)
{
    const Dataset train = syntheticDataset(3, 10, 64, 4);
    CnnLstmParams params;
    params.convFilters = 8;
    params.lstmUnits = 8;
    params.maxEpochs = 3;
    CnnLstmClassifier model(3, 64, params, 6);
    model.fit(train, train);
    const auto scores = model.predictScores(train.features[0]);
    ASSERT_EQ(scores.size(), 3u);
    double sum = 0.0;
    for (double s : scores) {
        EXPECT_GE(s, 0.0);
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(SoftmaxRegression, LearnsLinearProblem)
{
    const Dataset train = syntheticDataset(4, 25, 64, 7);
    const Dataset test = syntheticDataset(4, 10, 64, 8);
    SoftmaxRegressionClassifier model(4, 64, 9);
    model.fit(train, {});
    int hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
        if (model.predict(test.features[i]) == test.labels[i])
            ++hits;
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(test.size()),
              0.9);
}

TEST(Mlp, LearnsSyntheticProblem)
{
    const Dataset train = syntheticDataset(4, 25, 64, 40);
    const Dataset val = syntheticDataset(4, 5, 64, 41);
    const Dataset test = syntheticDataset(4, 10, 64, 42);
    MlpParams params;
    params.hidden = 32;
    MlpClassifier model(4, 64, params, 43);
    model.fit(train, val);
    EXPECT_GT(model.accuracy(test), 0.9);
}

TEST(Mlp, ScoresSumToOne)
{
    const Dataset train = syntheticDataset(3, 8, 32, 44);
    MlpParams params;
    params.hidden = 16;
    params.maxEpochs = 3;
    MlpClassifier model(3, 32, params, 45);
    model.fit(train, train);
    const auto scores = model.predictScores(train.features[0]);
    double sum = 0.0;
    for (double s : scores)
        sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Knn, NearestNeighbourRecall)
{
    const Dataset train = syntheticDataset(4, 20, 64, 10);
    const Dataset test = syntheticDataset(4, 8, 64, 11);
    KnnClassifier model(4, 3);
    model.fit(train, {});
    int hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
        if (model.predict(test.features[i]) == test.labels[i])
            ++hits;
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(test.size()),
              0.9);
}

TEST(CrossValidate, PerfectClassifierScoresPerfect)
{
    const Dataset data = syntheticDataset(3, 20, 64, 12);
    EvalConfig config;
    config.folds = 5;
    const auto result = crossValidate(knnFactory(1), data, config);
    EXPECT_GT(result.top1Mean, 0.95);
    EXPECT_EQ(result.foldTop1.size(), 5u);
    EXPECT_GE(result.topKMean, result.top1Mean);
}

TEST(CrossValidate, ChanceOnRandomLabels)
{
    Dataset data = syntheticDataset(4, 25, 32, 13);
    // Scramble labels: no classifier can beat chance reliably.
    Rng rng(14);
    for (auto &label : data.labels)
        label = static_cast<Label>(rng.uniformInt(0, 3));
    EvalConfig config;
    config.folds = 5;
    const auto result = crossValidate(knnFactory(3), data, config);
    EXPECT_LT(result.top1Mean, 0.45);
}

TEST(Serialize, WeightsRoundTrip)
{
    Rng rng(20);
    Sequential net;
    net.add(std::make_unique<Dense>(6, 5, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Dense>(5, 3, rng));

    Matrix probe(6, 1);
    probe.randomize(rng, 1.0);
    const Matrix before = net.forward(probe, false);

    std::stringstream stream;
    ASSERT_TRUE(saveWeights(stream, net).isOk());

    // A differently initialized clone must reproduce the original's
    // outputs once the weights are loaded.
    Rng rng2(21);
    Sequential clone;
    clone.add(std::make_unique<Dense>(6, 5, rng2));
    clone.add(std::make_unique<ReLU>());
    clone.add(std::make_unique<Dense>(5, 3, rng2));
    ASSERT_TRUE(loadWeights(stream, clone).isOk());
    const Matrix after = clone.forward(probe, false);
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(after.data()[i], before.data()[i], 1e-5);
}

TEST(Serialize, CnnLstmRoundTripPreservesPredictions)
{
    const Dataset train = syntheticDataset(3, 12, 64, 30);
    CnnLstmParams params;
    params.convFilters = 8;
    params.lstmUnits = 8;
    params.maxEpochs = 5;
    CnnLstmClassifier model(3, 64, params, 31);
    model.fit(train, train);

    std::stringstream stream;
    ASSERT_TRUE(saveWeights(stream, model.network()).isOk());
    CnnLstmClassifier clone(3, 64, params, 777);
    ASSERT_TRUE(loadWeights(stream, clone.network()).isOk());

    for (std::size_t i = 0; i < train.size(); i += 5) {
        const auto a = model.predictScores(train.features[i]);
        const auto b = clone.predictScores(train.features[i]);
        for (std::size_t c = 0; c < a.size(); ++c)
            EXPECT_NEAR(a[c], b[c], 1e-5);
    }
}

TEST(Training, MlpRecoversFromNanPoisonedSample)
{
    Dataset train = syntheticDataset(3, 20, 32, 9);
    train.features[5][3] = std::nan("");

    MlpParams params;
    params.maxEpochs = 4;
    params.patience = 4;
    MlpClassifier model(3, 32, params, 11);
    model.fit(train, train);

    // The poisoned batch was skipped every epoch it was visited, and
    // the parameters never absorbed a NaN.
    EXPECT_GT(model.skippedBatches(), 0u);
    EXPECT_TRUE(allFinite(model.network().params()));
    Dataset clean = syntheticDataset(3, 20, 32, 9);
    for (double s : model.predictScores(clean.features[0]))
        EXPECT_TRUE(std::isfinite(s));
}

TEST(Training, CnnLstmRecoversFromNanPoisonedSample)
{
    Dataset train = syntheticDataset(3, 20, 64, 10);
    train.features[7][0] =
        std::numeric_limits<double>::infinity();

    CnnLstmParams params;
    params.convFilters = 8;
    params.lstmUnits = 8;
    params.maxEpochs = 3;
    params.patience = 3;
    CnnLstmClassifier model(3, 64, params, 12);
    model.fit(train, train);

    EXPECT_GT(model.skippedBatches(), 0u);
    EXPECT_TRUE(allFinite(model.network().params()));
    // The loss history only aggregates finite batches.
    for (const auto &epoch : model.history())
        EXPECT_TRUE(std::isfinite(epoch.trainLoss));
}

TEST(Training, AdamStepIfFiniteLeavesParamsUntouched)
{
    Rng rng(13);
    Matrix p(2, 2), g(2, 2);
    p.randomize(rng, 1.0);
    g.randomize(rng, 1.0);
    const Matrix before = p;
    g(1, 1) = std::numeric_limits<float>::quiet_NaN();
    Adam adam(1e-2);
    EXPECT_FALSE(adam.stepIfFinite({&p}, {&g}));
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p.data()[i], before.data()[i]);
    g(1, 1) = 0.5f;
    EXPECT_TRUE(adam.stepIfFinite({&p}, {&g}));
    bool moved = false;
    for (std::size_t i = 0; i < p.size(); ++i)
        moved = moved || p.data()[i] != before.data()[i];
    EXPECT_TRUE(moved);
}

TEST(SerializeErrors, RejectsWrongArchitecture)
{
    Rng rng(22);
    Sequential net;
    net.add(std::make_unique<Dense>(4, 4, rng));
    std::stringstream stream;
    ASSERT_TRUE(saveWeights(stream, net).isOk());

    Sequential other;
    other.add(std::make_unique<Dense>(4, 5, rng)); // Different shape.
    const Status status = loadWeights(stream, other);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::ShapeMismatch);
    EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
    // The failed load must not have touched the destination weights.
}

TEST(SerializeErrors, RejectsWrongHeaderNamingWhatWasFound)
{
    std::stringstream stream;
    stream << "junk\n";
    Rng rng(23);
    Sequential net;
    net.add(std::make_unique<Dense>(2, 2, rng));
    const Status status = loadWeights(stream, net);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::ParseError);
    EXPECT_NE(status.message().find("bigfish-weights"), std::string::npos);
    EXPECT_NE(status.message().find("junk"), std::string::npos);
}

TEST(SerializeErrors, LoadWeightsOrDieStillAbortsOnBadInput)
{
    std::stringstream stream;
    stream << "junk\n";
    Rng rng(24);
    Sequential net;
    net.add(std::make_unique<Dense>(2, 2, rng));
    EXPECT_EXIT(loadWeightsOrDie(stream, net),
                ::testing::ExitedWithCode(1), "bigfish-weights");
}

TEST(OpenWorldEval, ReportsSplitMetrics)
{
    // Classes 0..2 sensitive, class 3 non-sensitive.
    Dataset data = syntheticDataset(4, 25, 64, 15);
    EvalConfig config;
    config.folds = 5;
    const auto result = evaluateOpenWorld(knnFactory(1), data, 3, config);
    EXPECT_GT(result.openWorld.sensitiveAccuracy, 0.9);
    EXPECT_GT(result.openWorld.nonSensitiveAccuracy, 0.9);
    EXPECT_GT(result.openWorld.combinedAccuracy, 0.9);
}

} // namespace
} // namespace bigfish::ml
