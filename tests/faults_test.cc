/**
 * @file
 * Deterministic fault-injection tests.
 *
 * Pins down the FaultPlan contract: every fault decision is a pure
 * function of (FaultConfig::seed, trace salt), so a faulted collection
 * replays bit-identically; and the pipeline degrades gracefully —
 * dropped traces are accounted in FingerprintResult::droppedTraces
 * instead of aborting the evaluation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ml/classifier.hh"
#include "sim/faults.hh"
#include "sim/interrupt.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"
#include "web/catalog.hh"
#include "web/site.hh"

namespace bigfish {
namespace {

sim::RunTimeline
denseTimeline()
{
    sim::RunTimeline t;
    t.duration = kSec;
    t.activityInterval = 10 * kMsec;
    t.iterCostFactor.assign(100, 1.0);
    t.occupancy.assign(100, 0.0);
    for (int i = 0; i < 200; ++i)
        t.stolen.push_back({i * 5 * kMsec, 50 * kUsec,
                            sim::InterruptKind::TimerTick});
    return t;
}

TEST(FaultPlan, DisabledConfigDoesNothing)
{
    const sim::FaultConfig config = sim::FaultConfig::none();
    EXPECT_FALSE(config.enabled());
    const sim::FaultPlan plan(config, 1);
    sim::RunTimeline timeline = denseTimeline();
    plan.applyToTimeline(timeline);
    EXPECT_EQ(timeline.stolen.size(), 200u);
    EXPECT_EQ(plan.truncatedLength(1000), 1000u);
    auto timer = plan.wrapTimer(std::make_unique<timers::PreciseTimer>());
    EXPECT_EQ(timer->name(), "precise");
}

TEST(FaultPlan, DropAllRemovesEveryInterval)
{
    sim::FaultConfig config;
    config.dropInterruptProb = 1.0;
    const sim::FaultPlan plan(config, 7);
    sim::RunTimeline timeline = denseTimeline();
    plan.applyToTimeline(timeline);
    EXPECT_TRUE(timeline.stolen.empty());
}

TEST(FaultPlan, DuplicatesExtendStolenTime)
{
    sim::FaultConfig config;
    config.duplicateInterruptProb = 1.0;
    const sim::FaultPlan plan(config, 7);
    sim::RunTimeline timeline = denseTimeline();
    const TimeNs before = timeline.totalStolenAll();
    plan.applyToTimeline(timeline);
    EXPECT_GT(timeline.stolen.size(), 200u);
    EXPECT_GT(timeline.totalStolenAll(), before);
    // Still sorted, non-overlapping, inside the run.
    for (std::size_t i = 0; i + 1 < timeline.stolen.size(); ++i)
        EXPECT_LE(timeline.stolen[i].end(),
                  timeline.stolen[i + 1].arrival);
    EXPECT_LE(timeline.stolen.back().end(), timeline.duration);
}

TEST(FaultPlan, StallsInjectUntraceableIntervals)
{
    sim::FaultConfig config;
    config.stallsPerSecond = 20.0;
    const sim::FaultPlan plan(config, 3);
    sim::RunTimeline timeline = denseTimeline();
    plan.applyToTimeline(timeline);
    std::size_t stalls = 0;
    for (const auto &s : timeline.stolen)
        if (s.kind == sim::InterruptKind::UntraceableStall)
            ++stalls;
    EXPECT_GT(stalls, 0u);
}

TEST(FaultPlan, TimelineFaultsAreDeterministicAndSaltDependent)
{
    sim::FaultConfig config;
    config.dropInterruptProb = 0.5;
    config.duplicateInterruptProb = 0.2;
    config.stallsPerSecond = 5.0;
    config.seed = 11;

    sim::RunTimeline a = denseTimeline();
    sim::RunTimeline b = denseTimeline();
    sim::RunTimeline c = denseTimeline();
    sim::FaultPlan(config, 42).applyToTimeline(a);
    sim::FaultPlan(config, 42).applyToTimeline(b);
    sim::FaultPlan(config, 43).applyToTimeline(c);

    ASSERT_EQ(a.stolen.size(), b.stolen.size());
    for (std::size_t i = 0; i < a.stolen.size(); ++i) {
        EXPECT_EQ(a.stolen[i].arrival, b.stolen[i].arrival);
        EXPECT_EQ(a.stolen[i].duration, b.stolen[i].duration);
        EXPECT_EQ(a.stolen[i].kind, b.stolen[i].kind);
    }
    // A different per-trace salt draws an independent fault pattern.
    bool differs = (a.stolen.size() != c.stolen.size());
    for (std::size_t i = 0; !differs && i < a.stolen.size(); ++i)
        differs = a.stolen[i].arrival != c.stolen[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, TruncationIsDeterministicWithinBounds)
{
    sim::FaultConfig config;
    config.truncateProb = 1.0;
    config.truncateKeepMin = 0.25;
    config.truncateKeepMax = 0.75;
    const sim::FaultPlan plan(config, 5);
    const std::size_t kept = plan.truncatedLength(1000);
    EXPECT_GE(kept, 250u);
    EXPECT_LE(kept, 750u);
    // Idempotent and call-order independent: re-asking gives the same
    // answer, regardless of the other fault streams having been drawn.
    EXPECT_EQ(plan.truncatedLength(1000), kept);
    sim::RunTimeline timeline = denseTimeline();
    plan.applyToTimeline(timeline);
    EXPECT_EQ(plan.truncatedLength(1000), kept);
    EXPECT_EQ(sim::FaultPlan(config, 5).truncatedLength(1000), kept);
}

TEST(FaultyTimer, BackstepsAreReproducibleNonNegativeAndPresent)
{
    sim::FaultConfig config;
    config.timerBackstepProb = 0.5;
    // Backsteps larger than the 100 us sampling stride below, so a
    // bucket boundary into a backstepped quantum shows up as an actual
    // non-monotonicity in the sampled reads.
    config.timerBackstepMax = 500 * kUsec;
    config.timerBackstepQuantum = kMsec;
    const sim::FaultPlan plan(config, 9);

    auto t1 = plan.wrapTimer(std::make_unique<timers::PreciseTimer>());
    auto t2 = plan.wrapTimer(std::make_unique<timers::PreciseTimer>());
    ASSERT_EQ(t1->name(), "precise+faults");

    bool any_backstep = false;
    TimeNs prev = -1;
    for (TimeNs real = 0; real <= 60 * kMsec; real += 100 * kUsec) {
        const TimeNs o1 = t1->observe(real);
        const TimeNs o2 = t2->observe(real);
        EXPECT_EQ(o1, o2) << "at real=" << real;
        EXPECT_GE(o1, 0);
        EXPECT_GE(o1, real - config.timerBackstepMax);
        EXPECT_LE(o1, real);
        if (prev >= 0 && o1 < prev)
            any_backstep = true;
        prev = o1;
    }
    EXPECT_TRUE(any_backstep);
}

TEST(FaultyTimer, SkewShiftsObservedTime)
{
    sim::FaultConfig config;
    config.timerSkewPpm = 200000.0; // 20% fast: obvious on purpose.
    const sim::FaultPlan plan(config, 2);
    auto timer = plan.wrapTimer(std::make_unique<timers::PreciseTimer>());
    EXPECT_NEAR(static_cast<double>(timer->observe(kSec)), 1.2e9, 2.0);
    EXPECT_EQ(timer->observe(0), 0);
}

core::CollectionConfig
faultyConfig()
{
    core::CollectionConfig config;
    config.seed = 2024;
    config.browser.traceDuration = 2 * kSec;
    config.faults.dropInterruptProb = 0.2;
    config.faults.duplicateInterruptProb = 0.1;
    config.faults.stallsPerSecond = 2.0;
    config.faults.timerSkewPpm = 50.0;
    config.faults.timerBackstepProb = 0.01;
    config.faults.truncateProb = 0.5;
    config.faults.truncateKeepMin = 0.3;
    config.faults.truncateKeepMax = 0.9;
    config.faults.seed = 31;
    return config;
}

TEST(FaultCollection, SameSeedReproducesBitIdenticalTraces)
{
    const auto config = faultyConfig();
    // Two independently constructed collectors: nothing may leak through
    // shared mutable state.
    const core::TraceCollector c1(config), c2(config);
    const auto site = web::amazonSignature(1);
    const auto a = c1.collectOne(site, 3);
    const auto b = c2.collectOne(site, 3);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_EQ(a.value().counts.size(), b.value().counts.size());
    for (std::size_t i = 0; i < a.value().counts.size(); ++i)
        EXPECT_DOUBLE_EQ(a.value().counts[i], b.value().counts[i]);
    ASSERT_EQ(a.value().wallTimes.size(), b.value().wallTimes.size());
    for (std::size_t i = 0; i < a.value().wallTimes.size(); ++i)
        EXPECT_EQ(a.value().wallTimes[i], b.value().wallTimes[i]);
}

TEST(FaultCollection, DifferentFaultSeedsProduceDifferentTraces)
{
    auto config = faultyConfig();
    const core::TraceCollector c1(config);
    config.faults.seed = 32;
    const core::TraceCollector c2(config);
    const auto site = web::amazonSignature(1);
    const auto a = c1.collectOne(site, 3);
    const auto b = c2.collectOne(site, 3);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    bool differs = a.value().counts.size() != b.value().counts.size();
    for (std::size_t i = 0; !differs && i < a.value().counts.size(); ++i)
        differs = a.value().counts[i] != b.value().counts[i];
    EXPECT_TRUE(differs);
}

TEST(FaultCollection, TruncationDropsAreAccounted)
{
    core::CollectionConfig config;
    config.seed = 5;
    config.browser.traceDuration = 2 * kSec;
    // Truncated traces keep at most ~2 of ~400 periods, below
    // kMinViablePeriods, so every truncation hit becomes a dropped trace.
    config.faults.truncateProb = 0.5;
    config.faults.truncateKeepMin = 0.0;
    config.faults.truncateKeepMax = 0.005;
    config.faults.seed = 8;

    const core::TraceCollector collector(config);
    const web::SiteCatalog catalog(3, 7);
    core::CollectionStats stats;
    const auto set = collector.collectClosedWorld(catalog, 6, &stats);
    ASSERT_TRUE(set.isOk());
    EXPECT_EQ(stats.attempted, 18u);
    EXPECT_EQ(stats.collected + stats.dropped, stats.attempted);
    EXPECT_GT(stats.dropped, 0u);
    EXPECT_EQ(set.value().size(), stats.collected);
    for (const auto &trace : set.value().traces)
        EXPECT_GE(trace.counts.size(),
                  core::TraceCollector::kMinViablePeriods);
}

TEST(FaultIntegration, PipelineDegradesGracefullyUnderFaults)
{
    core::CollectionConfig config;
    config.seed = 99;
    config.browser.traceDuration = 3 * kSec;

    core::PipelineConfig pipeline;
    pipeline.numSites = 4;
    pipeline.tracesPerSite = 8;
    pipeline.featureLen = 128;
    pipeline.eval.folds = 4;
    pipeline.factory = ml::knnFactory(3);

    const auto clean = core::runFingerprinting(config, pipeline);
    ASSERT_TRUE(clean.isOk());
    EXPECT_EQ(clean.value().droppedTraces, 0u);

    // Table-1-style run under a non-trivial fault plan: 10% of
    // interrupts never delivered, and truncation kills some traces.
    config.faults.dropInterruptProb = 0.1;
    config.faults.truncateProb = 0.3;
    config.faults.truncateKeepMin = 0.0;
    config.faults.truncateKeepMax = 0.005;
    config.faults.seed = 17;

    const auto faulted = core::runFingerprinting(config, pipeline);
    ASSERT_TRUE(faulted.isOk());
    const auto &result = faulted.value();
    EXPECT_GT(result.droppedTraces, 0u);
    EXPECT_EQ(result.collectedTraces + result.droppedTraces, 32u);

    // Graceful degradation: still far above chance (0.25), not wildly
    // better than the clean run.
    EXPECT_GT(result.closedWorld.top1Mean, 0.4);
    EXPECT_LE(result.closedWorld.top1Mean,
              clean.value().closedWorld.top1Mean + 0.2);

    // Bit-reproducible for a fixed seed.
    const auto again = core::runFingerprinting(config, pipeline);
    ASSERT_TRUE(again.isOk());
    EXPECT_DOUBLE_EQ(again.value().closedWorld.top1Mean,
                     result.closedWorld.top1Mean);
    EXPECT_EQ(again.value().droppedTraces, result.droppedTraces);
    EXPECT_EQ(again.value().collectedTraces, result.collectedTraces);
}

} // namespace
} // namespace bigfish
