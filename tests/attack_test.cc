/**
 * @file
 * Unit tests for src/attack: trace containers, feature extraction, and
 * the loop-counting / sweep-counting attackers (Figure 2 semantics).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "attack/attacker.hh"
#include "attack/segmentation.hh"
#include "attack/trace.hh"
#include "attack/trace_io.hh"
#include "sim/synthesizer.hh"
#include "stats/descriptive.hh"
#include "timers/timer.hh"
#include "web/catalog.hh"
#include "web/session.hh"
#include "web/site.hh"

namespace bigfish::attack {
namespace {

TEST(Trace, MaxAndNormalization)
{
    Trace trace;
    trace.counts = {10, 20, 5};
    EXPECT_DOUBLE_EQ(trace.maxCount(), 20.0);
    const auto norm = trace.normalized();
    EXPECT_DOUBLE_EQ(norm[0], 0.5);
    EXPECT_DOUBLE_EQ(norm[1], 1.0);
    EXPECT_DOUBLE_EQ(norm[2], 0.25);
}

TEST(TraceSet, LabelsAndClasses)
{
    TraceSet set;
    Trace a, b;
    a.label = 0;
    b.label = 4;
    set.add(a);
    set.add(b);
    EXPECT_EQ(set.numClasses(), 5);
    EXPECT_EQ(set.labels(), (std::vector<Label>{0, 4}));
}

TEST(TraceSet, ToFeaturesFixedLength)
{
    TraceSet set;
    Trace a;
    a.counts.assign(1000, 5.0);
    a.counts[500] = 10.0;
    set.add(a);
    const auto features = set.toFeatures(100);
    ASSERT_EQ(features.size(), 1u);
    EXPECT_EQ(features[0].size(), 100u);
}

/** Synthesizes a timeline for one example site. */
sim::RunTimeline
exampleTimeline(std::uint64_t seed, TimeNs duration = 5 * kSec)
{
    Rng rng(seed);
    const auto site = web::amazonSignature(0);
    const auto activity = web::realizeWorkload(
        site, duration, 1.0, web::RealizationNoise{}, rng);
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    Rng synth_rng(seed + 1);
    return synth.synthesize(activity, synth_rng);
}

TEST(IterationCosts, LoopIsConstantUpToMachineFactor)
{
    const auto timeline = exampleTimeline(1);
    const auto machine = sim::MachineConfig::linuxDesktop();
    AttackerParams params;
    const auto costs = iterationCosts(AttackerKind::LoopCounting, params,
                                      machine, timeline);
    ASSERT_EQ(costs.size(), timeline.iterCostFactor.size());
    for (std::size_t i = 0; i < costs.size(); ++i)
        EXPECT_NEAR(costs[i],
                    params.loopIterNs * timeline.iterCostFactor[i], 1e-9);
}

TEST(IterationCosts, SweepTracksOccupancy)
{
    // Hand-built timeline: occupancy 0 in the first step, 1 in the
    // second, no machine factor noise — the sweep cost difference must
    // be exactly the observed-occupancy miss term.
    sim::RunTimeline timeline;
    timeline.duration = 20 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = {1.0, 1.0};
    timeline.occupancy = {0.0, 1.0};
    const auto machine = sim::MachineConfig::linuxDesktop();
    AttackerParams params;
    const auto costs = iterationCosts(AttackerKind::SweepCounting, params,
                                      machine, timeline);
    ASSERT_EQ(costs.size(), 2u);
    const double lines = static_cast<double>(machine.llcLines());
    EXPECT_NEAR(costs[0],
                lines * machine.sweepHitNsPerLine + params.sweepOverheadNs,
                1e-6);
    EXPECT_NEAR(costs[1] - costs[0],
                params.sweepObservedOccupancy * lines *
                    machine.sweepMissExtraNsPerLine,
                1e-6);
}

TEST(Attackers, LoopCountsAreOrdersOfMagnitudeLarger)
{
    // Paper Section 3.3: ~27,000 loop iterations vs ~32 sweeps per 5 ms.
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(3);
    AttackerParams params;
    timers::PreciseTimer t1, t2;
    const Trace loop = collectTraceOrDie(AttackerKind::LoopCounting, params,
                                    machine, timeline, t1, 5 * kMsec);
    const Trace sweep = collectTraceOrDie(AttackerKind::SweepCounting, params,
                                     machine, timeline, t2, 5 * kMsec);
    EXPECT_NEAR(loop.maxCount(), 27000.0, 3000.0);
    // ~32 sweeps per idle period; the max over a trace rides the
    // memory-noise tail, so allow a wider band than for the loop.
    EXPECT_NEAR(sweep.maxCount(), 32.0, 10.0);
    EXPECT_NEAR(stats::quantile(sweep.counts, 0.9), 31.0, 6.0);
}

TEST(Attackers, TraceLengthMatchesDurationOverPeriod)
{
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(4, 10 * kSec);
    AttackerParams params;
    timers::PreciseTimer timer;
    const Trace trace = collectTraceOrDie(AttackerKind::LoopCounting, params,
                                     machine, timeline, timer, 5 * kMsec);
    EXPECT_NEAR(static_cast<double>(trace.size()), 2000.0, 20.0);
    EXPECT_EQ(trace.counts.size(), trace.wallTimes.size());
    EXPECT_EQ(trace.attacker, "loop-counting");
}

TEST(Attackers, BusyPhasesDepressCounts)
{
    // The amazon workload is busy in the first 2 s: counts there must be
    // lower than in the 7-8 s lull.
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(5, 10 * kSec);
    AttackerParams params;
    timers::PreciseTimer timer;
    const Trace trace = collectTraceOrDie(AttackerKind::LoopCounting, params,
                                     machine, timeline, timer, 5 * kMsec);
    ASSERT_GT(trace.size(), 1800u);
    double busy = 0.0, quiet = 0.0;
    int busy_n = 0, quiet_n = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const double t_ms = static_cast<double>(i) * 5.0;
        if (t_ms > 200 && t_ms < 1500) {
            busy += trace.counts[i];
            ++busy_n;
        } else if (t_ms > 7000 && t_ms < 8000) {
            quiet += trace.counts[i];
            ++quiet_n;
        }
    }
    EXPECT_GT(quiet / quiet_n, busy / busy_n);
}

TEST(Attackers, LoopAndSweepTracesCorrelate)
{
    // Figure 4: both attackers observe the same system events, so their
    // averaged normalized traces are strongly correlated.
    const auto machine = sim::MachineConfig::linuxDesktop();
    AttackerParams params;
    std::vector<std::vector<double>> loop_runs, sweep_runs;
    for (int run = 0; run < 10; ++run) {
        const auto timeline = exampleTimeline(100 + run, 10 * kSec);
        timers::PreciseTimer t1, t2;
        const Trace loop =
            collectTraceOrDie(AttackerKind::LoopCounting, params, machine,
                         timeline, t1, 5 * kMsec);
        const Trace sweep =
            collectTraceOrDie(AttackerKind::SweepCounting, params, machine,
                         timeline, t2, 5 * kMsec);
        loop_runs.push_back(
            stats::downsample(loop.normalized(), 100));
        sweep_runs.push_back(
            stats::downsample(sweep.normalized(), 100));
    }
    const auto loop_avg = stats::elementwiseMean(loop_runs);
    const auto sweep_avg = stats::elementwiseMean(sweep_runs);
    EXPECT_GT(stats::pearson(loop_avg, sweep_avg), 0.6);
}

TEST(Attackers, WallTimesMatchPeriodUnderPreciseTimer)
{
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(6);
    AttackerParams params;
    timers::PreciseTimer timer;
    const Trace trace = collectTraceOrDie(AttackerKind::LoopCounting, params,
                                     machine, timeline, timer, 5 * kMsec);
    for (std::size_t i = 0; i + 1 < trace.wallTimes.size(); ++i) {
        EXPECT_GE(trace.wallTimes[i], 5 * kMsec);
        // A handler can overshoot the period end by at most one handler
        // duration plus one iteration.
        EXPECT_LE(trace.wallTimes[i], 5 * kMsec + 10 * kMsec);
    }
}

TEST(Segmentation, FindsSyntheticOnsets)
{
    // Synthetic long trace: calm at 27000 counts with two loading
    // regions (depressed counts) starting at bins 400 and 1400.
    Trace trace;
    trace.period = 5 * kMsec;
    trace.counts.assign(2400, 27000.0);
    Rng rng(9);
    for (auto &c : trace.counts)
        c += rng.normal(0.0, 60.0);
    for (std::size_t i = 400; i < 700; ++i)
        trace.counts[i] -= 3000.0;
    for (std::size_t i = 1400; i < 1750; ++i)
        trace.counts[i] -= 3000.0;

    const auto onsets = detectNavigations(trace);
    ASSERT_EQ(onsets.size(), 2u);
    EXPECT_NEAR(static_cast<double>(onsets[0]), 400.0, 50.0);
    EXPECT_NEAR(static_cast<double>(onsets[1]), 1400.0, 50.0);
}

TEST(Segmentation, MinSpacingSuppressesDoubleFires)
{
    Trace trace;
    trace.period = 5 * kMsec;
    trace.counts.assign(1200, 27000.0);
    // Two bursts only 1 s apart: must merge into one navigation.
    for (std::size_t i = 300; i < 350; ++i)
        trace.counts[i] -= 4000.0;
    for (std::size_t i = 500; i < 560; ++i)
        trace.counts[i] -= 4000.0;
    const auto onsets = detectNavigations(trace);
    EXPECT_EQ(onsets.size(), 1u);
}

TEST(Segmentation, QuietTraceHasNoOnsets)
{
    Trace trace;
    trace.period = 5 * kMsec;
    trace.counts.assign(1000, 27000.0);
    Rng rng(10);
    for (auto &c : trace.counts)
        c += rng.normal(0.0, 30.0);
    // With no sustained dip region the detector should fire rarely.
    const auto onsets = detectNavigations(trace);
    EXPECT_LE(onsets.size(), 2u);
}

TEST(Segmentation, SliceCoversTraceWithoutOverlap)
{
    Trace trace;
    trace.period = 5 * kMsec;
    for (int i = 0; i < 900; ++i)
        trace.counts.push_back(i);
    trace.wallTimes.assign(900, 5 * kMsec);
    const auto slices = sliceTrace(trace, {100, 400, 700});
    ASSERT_EQ(slices.size(), 3u);
    EXPECT_EQ(slices[0].counts.size(), 300u);
    EXPECT_EQ(slices[1].counts.size(), 300u);
    EXPECT_EQ(slices[2].counts.size(), 200u);
    EXPECT_DOUBLE_EQ(slices[0].counts.front(), 100.0);
    EXPECT_DOUBLE_EQ(slices[2].counts.back(), 899.0);
    EXPECT_EQ(slices[1].wallTimes.size(), 300u);
}

TEST(Segmentation, EndToEndOnRealSessionTrace)
{
    // Build a 3-visit session, collect the long trace, and require the
    // detector to land within 3 s of every true navigation.
    const web::SiteCatalog catalog(6, 7);
    web::BrowsingSession session;
    session.steps = {{0, 18 * kSec}, {3, 18 * kSec}, {5, 18 * kSec}};
    Rng rng(11);
    const auto activity = web::realizeSession(
        session, catalog, 1.0, web::RealizationNoise{}, rng);
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    Rng synth_rng(12);
    const auto timeline = synth.synthesize(activity, synth_rng);
    timers::PreciseTimer timer;
    AttackerParams params;
    const auto trace = collectTraceOrDie(
        AttackerKind::LoopCounting, params,
        sim::MachineConfig::linuxDesktop(), timeline, timer, 5 * kMsec);

    const auto onsets = detectNavigations(trace);
    const auto truths = session.navigationTimes();
    for (TimeNs truth : truths) {
        bool found = false;
        for (std::size_t onset : onsets) {
            const TimeNs at =
                static_cast<TimeNs>(onset) * trace.period;
            if (std::abs(at - truth) < 3 * kSec)
                found = true;
        }
        EXPECT_TRUE(found) << "missed navigation at " << truth;
    }
}

TEST(GapTrace, ChargesStolenTimePerPeriod)
{
    sim::RunTimeline timeline;
    timeline.duration = 20 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = {1.0, 1.0};
    timeline.occupancy = {0.0, 0.0};
    timeline.stolen = {
        {kMsec, 100 * kUsec, sim::InterruptKind::TimerTick},
        {2 * kMsec, 50 * kUsec, sim::InterruptKind::ReschedIpi},
        // In the second 5 ms period:
        {6 * kMsec, 200 * kUsec, sim::InterruptKind::SoftirqNetRx},
    };
    const Trace trace = collectGapTraceOrDie(timeline, 5 * kMsec);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_DOUBLE_EQ(trace.counts[0], 150.0 * kUsec);
    EXPECT_DOUBLE_EQ(trace.counts[1], 200.0 * kUsec);
    EXPECT_DOUBLE_EQ(trace.counts[2], 0.0);
    EXPECT_EQ(trace.attacker, "gap-trace");
}

TEST(GapTrace, SplitsSpanAcrossPeriodBoundary)
{
    sim::RunTimeline timeline;
    timeline.duration = 10 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = {1.0};
    timeline.occupancy = {0.0};
    // 2 ms handler straddling the 5 ms boundary: 1 ms in each period.
    timeline.stolen = {
        {4 * kMsec, 2 * kMsec, sim::InterruptKind::Preemption}};
    const Trace trace = collectGapTraceOrDie(timeline, 5 * kMsec);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace.counts[0], 1.0 * kMsec);
    EXPECT_DOUBLE_EQ(trace.counts[1], 1.0 * kMsec);
}

TEST(GapTrace, ThresholdFiltersTinyGaps)
{
    sim::RunTimeline timeline;
    timeline.duration = 10 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = {1.0};
    timeline.occupancy = {0.0};
    timeline.stolen = {{kMsec, 40, sim::InterruptKind::TimerTick}};
    // 40 ns + 30 ns poll = 70 ns < 100 ns threshold: invisible.
    const Trace trace = collectGapTraceOrDie(timeline, 5 * kMsec, 30, 100);
    EXPECT_DOUBLE_EQ(trace.counts[0], 0.0);
}

TEST(GapTrace, CorrelatesWithLoopTrace)
{
    // Section 5.2: different attack code, same channel — the stolen-time
    // trace must anti-correlate with the loop counter trace.
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(77, 10 * kSec);
    AttackerParams params;
    timers::PreciseTimer timer;
    const Trace loop = collectTraceOrDie(AttackerKind::LoopCounting, params,
                                    machine, timeline, timer, 5 * kMsec);
    const Trace gaps = collectGapTraceOrDie(timeline, 5 * kMsec);
    const auto loop_ds = stats::downsample(loop.normalized(), 200);
    const auto gap_ds = stats::downsample(gaps.counts, 200);
    EXPECT_LT(stats::pearson(loop_ds, gap_ds), -0.5);
}

TEST(TraceIo, RoundTripsExactly)
{
    TraceSet set;
    Trace a;
    a.siteId = 3;
    a.label = 3;
    a.period = 5 * kMsec;
    a.attacker = "loop-counting";
    a.counts = {27013, 26500.5, 21000};
    set.add(a);
    Trace b;
    b.siteId = 7;
    b.label = 99;
    b.period = 100 * kMsec;
    b.attacker = "sweep-counting";
    b.counts = {31, 28, 12, 30};
    set.add(b);

    std::stringstream stream;
    ASSERT_TRUE(writeTraces(stream, set).isOk());
    const TraceSet loaded = readTracesOrDie(stream);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.traces[0].siteId, 3);
    EXPECT_EQ(loaded.traces[0].label, 3);
    EXPECT_EQ(loaded.traces[0].period, 5 * kMsec);
    EXPECT_EQ(loaded.traces[0].attacker, "loop-counting");
    EXPECT_EQ(loaded.traces[0].counts, a.counts);
    EXPECT_EQ(loaded.traces[1].counts, b.counts);
    EXPECT_EQ(loaded.traces[1].label, 99);
}

TEST(TraceIo, RoundTripsRealCollectedTraces)
{
    const auto machine = sim::MachineConfig::linuxDesktop();
    const auto timeline = exampleTimeline(42, 3 * kSec);
    AttackerParams params;
    timers::PreciseTimer timer;
    TraceSet set;
    set.add(collectTraceOrDie(AttackerKind::LoopCounting, params, machine,
                         timeline, timer, 5 * kMsec));
    std::stringstream stream;
    ASSERT_TRUE(writeTraces(stream, set).isOk());
    const TraceSet loaded = readTracesOrDie(stream);
    ASSERT_EQ(loaded.traces[0].counts.size(), set.traces[0].counts.size());
    for (std::size_t i = 0; i < set.traces[0].counts.size(); ++i)
        EXPECT_DOUBLE_EQ(loaded.traces[0].counts[i],
                         set.traces[0].counts[i]);
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::stringstream stream;
    stream << "# bigfish-traces v1\n"
           << "# a comment\n"
           << "\n"
           << "1,1,5000000,loop-counting,10,20,30\n";
    const TraceSet loaded = readTracesOrDie(stream);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.traces[0].counts.size(), 3u);
}

TEST(TraceIoErrors, RejectsWrongHeaderNamingWhatWasFound)
{
    std::stringstream stream;
    stream << "not a trace file\n";
    const auto result = readTraces(stream);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("bigfish-traces"),
              std::string::npos);
    EXPECT_NE(result.status().message().find("not a trace file"),
              std::string::npos);
}

TEST(TraceIoErrors, RejectsRowWithoutCounts)
{
    std::stringstream stream;
    stream << "# bigfish-traces v1\n"
           << "1,1,5000000,loop-counting\n";
    const auto result = readTraces(stream);
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(TraceIoErrors, RejectsGarbageNumbers)
{
    std::stringstream stream;
    stream << "# bigfish-traces v1\n"
           << "x,1,5000000,loop-counting,10\n";
    const auto result = readTraces(stream);
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("malformed"),
              std::string::npos);
}

TEST(TraceIoErrors, ReadTracesOrDieStillAbortsOnBadInput)
{
    std::stringstream stream;
    stream << "not a trace file\n";
    EXPECT_EXIT(readTracesOrDie(stream), ::testing::ExitedWithCode(1),
                "bigfish-traces");
}

TEST(Attackers, KindNames)
{
    EXPECT_EQ(attackerKindName(AttackerKind::LoopCounting),
              "loop-counting");
    EXPECT_EQ(attackerKindName(AttackerKind::SweepCounting),
              "sweep-counting");
}

} // namespace
} // namespace bigfish::attack
