/**
 * @file
 * Tests of the content-addressed featurized-dataset cache
 * (core/feature_cache.hh): round-trip bit-exactness, hit/miss/eviction
 * accounting, key (fingerprint) invalidation, corrupted-entry fallback,
 * and concurrent-writer safety under the deterministic-payload
 * contract.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attacker.hh"
#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "core/feature_cache.hh"

namespace bigfish::core {
namespace {

namespace fs = std::filesystem;

/** A fresh empty cache directory unique to @p leaf. */
std::string
freshDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "bf_feature_cache_" + leaf;
    fs::remove_all(dir);
    return dir;
}

/** Opens a cache at a fresh directory, failing the test on error. */
FeatureCache
openFresh(const std::string &leaf)
{
    auto opened = FeatureCache::open(freshDir(leaf));
    EXPECT_TRUE(opened.isOk()) << opened.status().message();
    return std::move(opened).valueOrDie();
}

/** A deterministic dataset with awkward doubles (negative zero, inexact
 *  sums, tiny magnitudes) to stress the hexfloat round-trip. */
ml::Dataset
makeDataset(std::uint64_t seed, std::size_t rows, std::size_t cols)
{
    Rng rng(seed);
    ml::Dataset data;
    data.numClasses = 7;
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> x(cols);
        for (std::size_t j = 0; j < cols; ++j)
            x[j] = rng.normal(0.0, 1.0) * 1e-3;
        if (!x.empty())
            x[0] = (i % 2 == 0) ? -0.0 : 0.1 + 0.2; // inexact sum
        data.add(std::move(x), static_cast<Label>(i % 7));
    }
    return data;
}

FeatureCache::Entry
makeEntry(std::uint64_t seed, bool open_world)
{
    FeatureCache::Entry entry;
    entry.closedWorld = makeDataset(seed, 11, 13);
    entry.hasOpenWorld = open_world;
    if (open_world)
        entry.openWorld = makeDataset(seed + 1, 5, 13);
    entry.droppedTraces = 3;
    entry.collectedTraces = 220;
    return entry;
}

void
expectDatasetsBitEqual(const ml::Dataset &got, const ml::Dataset &want)
{
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.numClasses, want.numClasses);
    ASSERT_EQ(got.labels, want.labels);
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got.features[i].size(), want.features[i].size());
        for (std::size_t j = 0; j < got.features[i].size(); ++j) {
            // Bit-level comparison: -0.0 == 0.0 under operator==, but
            // the replay contract is bitwise identity.
            std::uint64_t gbits = 0, wbits = 0;
            static_assert(sizeof(double) == sizeof(std::uint64_t));
            std::memcpy(&gbits, &got.features[i][j], sizeof(gbits));
            std::memcpy(&wbits, &want.features[i][j], sizeof(wbits));
            EXPECT_EQ(gbits, wbits) << "row " << i << " col " << j;
        }
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

TEST(FeatureCache, MissThenStoreThenHitRoundTripsBitExactly)
{
    FeatureCache cache = openFresh("roundtrip");

    const std::uint64_t key = featureCacheKey(
        0x1234'5678'9abc'def0ULL, 256, 20, 60,
        attack::AttackerKind::LoopCounting);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);

    const FeatureCache::Entry entry = makeEntry(42, /*open_world=*/true);
    ASSERT_TRUE(cache.storeEntry(key, entry).isOk());
    EXPECT_EQ(cache.stats().stores, 1u);

    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(hit->droppedTraces, entry.droppedTraces);
    EXPECT_EQ(hit->collectedTraces, entry.collectedTraces);
    EXPECT_TRUE(hit->hasOpenWorld);
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
    expectDatasetsBitEqual(hit->openWorld, entry.openWorld);
}

TEST(FeatureCache, ClosedWorldOnlyEntryOmitsOpenSection)
{
    FeatureCache cache = openFresh("closed_only");
    const std::uint64_t key = featureCacheKey(
        7, 64, 5, 0, attack::AttackerKind::SweepCounting);
    const FeatureCache::Entry entry = makeEntry(9, /*open_world=*/false);
    ASSERT_TRUE(cache.storeEntry(key, entry).isOk());
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->hasOpenWorld);
    EXPECT_EQ(hit->openWorld.size(), 0u);
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
}

TEST(FeatureCache, KeyChangesWithEveryFeaturizationInput)
{
    // Any change to the collection fingerprint or a featurization
    // parameter must address a different entry — that is the whole
    // invalidation story: stale entries are never *found*.
    const std::uint64_t base = featureCacheKey(
        100, 256, 20, 60, attack::AttackerKind::LoopCounting);
    EXPECT_NE(base, featureCacheKey(101, 256, 20, 60,
                                    attack::AttackerKind::LoopCounting));
    EXPECT_NE(base, featureCacheKey(100, 255, 20, 60,
                                    attack::AttackerKind::LoopCounting));
    EXPECT_NE(base, featureCacheKey(100, 256, 21, 60,
                                    attack::AttackerKind::LoopCounting));
    EXPECT_NE(base, featureCacheKey(100, 256, 20, 61,
                                    attack::AttackerKind::LoopCounting));
    EXPECT_NE(base, featureCacheKey(100, 256, 20, 60,
                                    attack::AttackerKind::SweepCounting));
    // And the function itself is deterministic.
    EXPECT_EQ(base, featureCacheKey(100, 256, 20, 60,
                                    attack::AttackerKind::LoopCounting));
}

TEST(FeatureCache, DifferentKeyMissesDespiteStoredEntry)
{
    FeatureCache cache = openFresh("invalidation");
    const std::uint64_t key_a = featureCacheKey(
        1, 256, 20, 60, attack::AttackerKind::LoopCounting);
    const std::uint64_t key_b = featureCacheKey(
        2, 256, 20, 60, attack::AttackerKind::LoopCounting);
    ASSERT_TRUE(cache.storeEntry(key_a, makeEntry(1, true)).isOk());
    EXPECT_FALSE(cache.lookup(key_b).has_value());
    EXPECT_TRUE(cache.lookup(key_a).has_value());
}

TEST(FeatureCache, CorruptedEntryIsRemovedAndMisses)
{
    FeatureCache cache = openFresh("corrupt");
    const std::uint64_t key = featureCacheKey(
        3, 128, 10, 0, attack::AttackerKind::LoopCounting);
    ASSERT_TRUE(cache.storeEntry(key, makeEntry(3, false)).isOk());

    // Flip one payload byte; the CRC trailer must catch it.
    const std::string path = cache.entryPath(key);
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 100u);
    content[content.size() / 2] ^= 0x20;
    writeFile(path, content);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // The poisoned file is gone, so the next run re-stores cleanly.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(cache.storeEntry(key, makeEntry(3, false)).isOk());
    EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(FeatureCache, TruncatedEntryIsAMiss)
{
    FeatureCache cache = openFresh("torn");
    const std::uint64_t key = featureCacheKey(
        4, 128, 10, 0, attack::AttackerKind::LoopCounting);
    ASSERT_TRUE(cache.storeEntry(key, makeEntry(4, true)).isOk());

    // Simulate a torn write: keep only the first half of the file.
    const std::string path = cache.entryPath(key);
    const std::string content = readFile(path);
    writeFile(path, content.substr(0, content.size() / 2));

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_FALSE(fs::exists(path));
}

TEST(FeatureCache, ParseRejectsKeyMismatch)
{
    // An entry stored under one key must not validate under another
    // even if the bytes are intact (guards against renamed files).
    const FeatureCache::Entry entry = makeEntry(5, false);
    const std::string text = FeatureCache::serializeEntry(11, entry);
    FeatureCache::Entry parsed;
    EXPECT_TRUE(FeatureCache::parseEntry(text, 11, parsed));
    EXPECT_FALSE(FeatureCache::parseEntry(text, 12, parsed));
}

TEST(FeatureCache, EvictRemovesOldestBeyondBudget)
{
    FeatureCache cache = openFresh("evict");
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 6; ++i) {
        const std::uint64_t key = featureCacheKey(
            i, 64, 5, 0, attack::AttackerKind::LoopCounting);
        keys.push_back(key);
        ASSERT_TRUE(cache.storeEntry(key, makeEntry(i, false)).isOk());
        // Distinct mtimes so eviction order is the store order even on
        // coarse-granularity filesystems.
        const auto stamp = fs::last_write_time(cache.entryPath(key));
        fs::last_write_time(cache.entryPath(key),
                            stamp + std::chrono::seconds(i));
    }

    EXPECT_EQ(cache.evict(6), 0u); // within budget: no-op
    EXPECT_EQ(cache.evict(4), 2u); // oldest two go
    EXPECT_EQ(cache.stats().evicted, 2u);
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[0])));
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[1])));
    for (std::size_t i = 2; i < keys.size(); ++i)
        EXPECT_TRUE(fs::exists(cache.entryPath(keys[i]))) << i;
}

TEST(FeatureCache, ConcurrentWritersOfSameKeyLeaveAValidEntry)
{
    // The pipeline's contract: concurrent writers race to write
    // *identical* bytes (collection is deterministic), so whichever
    // atomic rename lands last must leave a parseable, correct entry.
    const std::string dir = freshDir("concurrent");
    const std::uint64_t key = featureCacheKey(
        6, 64, 5, 0, attack::AttackerKind::LoopCounting);
    const FeatureCache::Entry entry = makeEntry(6, true);

    ThreadPool pool(8);
    std::vector<int> ok(16, 0);
    pool.parallelFor(16, [&](std::size_t i) {
        auto opened = FeatureCache::open(dir);
        if (!opened.isOk())
            return;
        FeatureCache writer = std::move(opened).valueOrDie();
        if (writer.storeEntry(key, entry).isOk())
            ok[i] = 1;
    });
    for (std::size_t i = 0; i < ok.size(); ++i)
        EXPECT_EQ(ok[i], 1) << "writer " << i;

    FeatureCache cache = FeatureCache::open(dir).valueOrDie();
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    expectDatasetsBitEqual(hit->closedWorld, entry.closedWorld);
    expectDatasetsBitEqual(hit->openWorld, entry.openWorld);
}

} // namespace
} // namespace bigfish::core
