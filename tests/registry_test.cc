/**
 * @file
 * Tests for the experiment registry: DESIGN.md §4 completeness (every
 * experiment the design doc names is registered, and vice versa), smoke
 * runnability of every descriptor, artifact shape, and bit-identical
 * replay of a run from its own emitted artifact JSON.
 */

#include "experiments.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "core/artifact.hh"
#include "core/registry.hh"
#include "spec/spec.hh"

namespace bigfish {
namespace {

const core::ExperimentRegistry &
registry()
{
    static const core::ExperimentRegistry *instance = [] {
        auto *r = new core::ExperimentRegistry;
        bench::registerAllExperiments(*r);
        return r;
    }();
    return *instance;
}

/** Resolves @p descriptor's spec at --smoke scale, no env, no flags. */
spec::RunSpec
smokeSpec(const core::ExperimentDescriptor &descriptor)
{
    spec::SpecSources sources;
    sources.presets = core::smokeScaleOverrides();
    sources.presets.insert(sources.presets.end(),
                           descriptor.smokeOverrides.begin(),
                           descriptor.smokeOverrides.end());
    auto resolved =
        spec::resolveSpec(descriptor.name, descriptor.schema, sources);
    EXPECT_TRUE(resolved.isOk()) << resolved.status().message();
    return std::move(resolved).value();
}

Result<core::RunArtifact>
runWithSpec(const core::ExperimentDescriptor &descriptor,
            spec::RunSpec run_spec)
{
    core::RunContext ctx;
    ctx.descriptor = &descriptor;
    ctx.spec = std::move(run_spec);
    return descriptor.run(ctx);
}

TEST(Registry, MatchesDesignDocExperimentIndex)
{
    std::ifstream in(BIGFISH_DESIGN_MD);
    ASSERT_TRUE(in) << "cannot open " << BIGFISH_DESIGN_MD;
    std::ostringstream text;
    text << in.rdbuf();
    const std::string design = text.str();

    std::set<std::string> documented;
    const std::regex pattern("bigfish run ([a-z0-9_]+)");
    for (auto it = std::sregex_iterator(design.begin(), design.end(),
                                        pattern);
         it != std::sregex_iterator(); ++it)
        documented.insert((*it)[1].str());

    const auto names = registry().names();
    const std::set<std::string> registered(names.begin(), names.end());

    EXPECT_GE(registered.size(), 15u);
    for (const auto &name : documented)
        EXPECT_TRUE(registered.count(name))
            << "DESIGN.md names `bigfish run " << name
            << "` but the registry has no such experiment";
    for (const auto &name : registered)
        EXPECT_TRUE(documented.count(name))
            << "experiment \"" << name
            << "\" is registered but absent from DESIGN.md §4";
}

TEST(Registry, DescriptorsAreWellFormed)
{
    for (const auto &[name, d] : registry().all()) {
        EXPECT_FALSE(d.title.empty()) << name;
        EXPECT_FALSE(d.paperReference.empty()) << name;
        EXPECT_TRUE(static_cast<bool>(d.run)) << name;
        // The common scale vocabulary must be declared everywhere so
        // BF_SITES / --seed etc. mean the same thing in every run.
        for (const char *param :
             {"sites", "traces", "open", "features", "folds", "seed",
              "paper-model", "threads"})
            EXPECT_NE(d.schema.find(param), nullptr)
                << name << " lacks common parameter " << param;
    }
}

TEST(Registry, EverySmokeRunSucceedsWithMetrics)
{
    for (const auto &[name, d] : registry().all()) {
        auto artifact = runWithSpec(d, smokeSpec(d));
        ASSERT_TRUE(artifact.isOk())
            << name << ": " << artifact.status().message();
        EXPECT_EQ(artifact.value().experiment(), name);
        EXPECT_FALSE(artifact.value().metrics().empty()) << name;
        for (const auto &[metric, value] : artifact.value().metrics())
            EXPECT_TRUE(value == value)
                << name << " produced NaN metric " << metric;
    }
}

TEST(Registry, ReplayFromEmittedArtifactIsBitIdentical)
{
    // fig7 is cheap and purely deterministic: run it, replay from the
    // artifact JSON it emitted, and demand identical metrics.
    const auto *d = registry().find("fig7_timer_outputs");
    ASSERT_NE(d, nullptr);
    auto first = runWithSpec(*d, smokeSpec(*d));
    ASSERT_TRUE(first.isOk()) << first.status().message();
    const std::string artifact_json = first.value().toJson();

    spec::SpecSources replay;
    replay.specText = artifact_json;
    replay.specName = "emitted-artifact.json";
    auto respec = spec::resolveSpec(d->name, d->schema, replay);
    ASSERT_TRUE(respec.isOk()) << respec.status().message();
    EXPECT_EQ(respec.value(), first.value().spec());

    auto second = runWithSpec(*d, std::move(respec).value());
    ASSERT_TRUE(second.isOk()) << second.status().message();
    ASSERT_EQ(first.value().metrics().size(),
              second.value().metrics().size());
    for (std::size_t i = 0; i < first.value().metrics().size(); ++i) {
        EXPECT_EQ(first.value().metrics()[i].first,
                  second.value().metrics()[i].first);
        EXPECT_EQ(first.value().metrics()[i].second,
                  second.value().metrics()[i].second)
            << first.value().metrics()[i].first;
    }
}

TEST(Registry, Table1SmokeMetricsMatchPreStageGraphBaseline)
{
    // Pinned %.6f metric values recorded from a pre-stage-graph smoke
    // run of table1_fingerprinting (same seeds, same smoke scale). The
    // stage-graph refactor moved the pipeline onto declared stages with
    // a unified cache, but the numbers are a pure function of the spec:
    // any drift here means the refactor changed results, not just
    // structure.
    struct Pinned
    {
        const char *name;
        double value;
    };
    const Pinned baseline[] = {
        {"Chrome_Linux_loop_top1", 0.000000},
        {"Chrome_Linux_loop_open_combined", 0.150000},
        {"Chrome_Linux_sweep_top1", 0.000000},
        {"Chrome_Linux_sweep_open_combined", 0.150000},
        {"Chrome_Windows_loop_top1", 0.000000},
        {"Chrome_Windows_loop_open_combined", 0.200000},
        {"Chrome_Windows_sweep_top1", 0.083333},
        {"Chrome_Windows_sweep_open_combined", 0.150000},
        {"Chrome_macOS_loop_top1", 0.083333},
        {"Chrome_macOS_loop_open_combined", 0.250000},
        {"Chrome_macOS_sweep_top1", 0.083333},
        {"Chrome_macOS_sweep_open_combined", 0.300000},
        {"Firefox_Linux_loop_top1", 0.000000},
        {"Firefox_Linux_loop_open_combined", 0.350000},
        {"Firefox_Linux_sweep_top1", 0.000000},
        {"Firefox_Linux_sweep_open_combined", 0.200000},
        {"Firefox_Windows_loop_top1", 0.000000},
        {"Firefox_Windows_loop_open_combined", 0.250000},
        {"Firefox_Windows_sweep_top1", 0.166667},
        {"Firefox_Windows_sweep_open_combined", 0.250000},
        {"Firefox_macOS_loop_top1", 0.083333},
        {"Firefox_macOS_loop_open_combined", 0.200000},
        {"Firefox_macOS_sweep_top1", 0.083333},
        {"Firefox_macOS_sweep_open_combined", 0.300000},
        {"Safari_macOS_loop_top1", 0.000000},
        {"Safari_macOS_loop_open_combined", 0.300000},
        {"Safari_macOS_sweep_top1", 0.083333},
        {"Safari_macOS_sweep_open_combined", 0.200000},
        {"Tor_Linux_loop_top1", 0.000000},
        {"Tor_Linux_loop_open_combined", 0.150000},
        {"Tor_Linux_sweep_top1", 0.000000},
        {"Tor_Linux_sweep_open_combined", 0.150000},
    };

    const auto *d = registry().find("table1_fingerprinting");
    ASSERT_NE(d, nullptr);
    auto artifact = runWithSpec(*d, smokeSpec(*d));
    ASSERT_TRUE(artifact.isOk()) << artifact.status().message();
    for (const auto &pin : baseline) {
        const auto got = artifact.value().findMetric(pin.name);
        ASSERT_TRUE(got.has_value()) << pin.name;
        // The artifact prints %.6f; compare at that precision, the
        // contract the emitted JSON actually makes.
        EXPECT_NEAR(*got, pin.value, 5e-7) << pin.name;
    }
    EXPECT_EQ(artifact.value().collectedTraces(), 320u);
    EXPECT_EQ(artifact.value().droppedTraces(), 0u);
}

TEST(Registry, ExpectedValuesKeyRealMetrics)
{
    // Paper-expected values live in the descriptors; each one must key
    // a metric the smoke run actually emits (catches renames).
    for (const char *name :
         {"table2_noise", "fig8_loop_durations", "background_noise"}) {
        const auto *d = registry().find(name);
        ASSERT_NE(d, nullptr) << name;
        auto artifact = runWithSpec(*d, smokeSpec(*d));
        ASSERT_TRUE(artifact.isOk())
            << name << ": " << artifact.status().message();
        for (const auto &e : d->expected)
            EXPECT_TRUE(artifact.value().findMetric(e.name).has_value())
                << name << ": expected value \"" << e.name
                << "\" does not match any emitted metric";
    }
}

TEST(Registry, AddPanicsOnDuplicateName)
{
    core::ExperimentRegistry r;
    core::ExperimentDescriptor d;
    d.name = "dup";
    d.title = "t";
    d.paperReference = "p";
    d.run = [](const core::RunContext &ctx) {
        return Result<core::RunArtifact>(core::makeArtifact(ctx));
    };
    r.add(d);
    EXPECT_DEATH(r.add(d), "dup");
}

} // namespace
} // namespace bigfish
