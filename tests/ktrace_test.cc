/**
 * @file
 * Unit tests for src/ktrace: the eBPF-analog tracer, the gap detector,
 * and the gap-to-interrupt attribution join of Section 5.2 — including
 * the paper's ">99% of gaps longer than 100 ns are interrupts" result.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ktrace/attribution.hh"
#include "ktrace/dump.hh"
#include "ktrace/gap_detector.hh"
#include "ktrace/tracer.hh"
#include "sim/synthesizer.hh"
#include "web/catalog.hh"
#include "web/site.hh"

namespace bigfish::ktrace {
namespace {

/** Builds a timeline with explicit stolen intervals. */
sim::RunTimeline
makeTimeline(std::vector<sim::StolenInterval> stolen,
             TimeNs duration = 100 * kMsec)
{
    sim::RunTimeline timeline;
    timeline.duration = duration;
    timeline.activityInterval = 10 * kMsec;
    const std::size_t steps =
        static_cast<std::size_t>(duration / timeline.activityInterval);
    timeline.iterCostFactor.assign(steps, 1.0);
    timeline.occupancy.assign(steps, 0.0);
    sim::normalizeTimeline(stolen);
    timeline.stolen = std::move(stolen);
    return timeline;
}

TEST(KernelTracer, RecordsTraceableKindsOnly)
{
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {2 * kMsec, 2 * kUsec, sim::InterruptKind::UntraceableStall},
        {3 * kMsec, 2 * kUsec, sim::InterruptKind::ReschedIpi},
    });
    const auto records = KernelTracer().record(timeline);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].kind, sim::InterruptKind::TimerTick);
    EXPECT_EQ(records[1].kind, sim::InterruptKind::ReschedIpi);
}

TEST(KernelTracer, ProfileAggregatesPerInterval)
{
    const auto timeline = makeTimeline({
        // 5 ms of softirq inside the first 100 ms interval.
        {10 * kMsec, 5 * kMsec, sim::InterruptKind::SoftirqNetRx},
        // 2 ms of resched IPI in the second interval.
        {110 * kMsec, 2 * kMsec, sim::InterruptKind::ReschedIpi},
    }, 300 * kMsec);
    const auto records = KernelTracer().record(timeline);
    const auto profile =
        KernelTracer::profile(records, timeline.duration, 100 * kMsec);
    ASSERT_EQ(profile.totalFraction.size(), 3u);
    EXPECT_NEAR(profile.softirqFraction[0], 0.05, 1e-9);
    EXPECT_NEAR(profile.reschedFraction[1], 0.02, 1e-9);
    EXPECT_NEAR(profile.totalFraction[2], 0.0, 1e-9);
}

TEST(KernelTracer, ProfileSplitsSpanningHandlers)
{
    // A handler straddling an interval boundary contributes to both.
    const auto timeline = makeTimeline(
        {{99 * kMsec, 2 * kMsec, sim::InterruptKind::TimerTick}},
        200 * kMsec);
    const auto profile = KernelTracer::profile(
        KernelTracer().record(timeline), timeline.duration, 100 * kMsec);
    EXPECT_NEAR(profile.totalFraction[0], 0.01, 1e-9);
    EXPECT_NEAR(profile.totalFraction[1], 0.01, 1e-9);
}

TEST(KernelTracer, CountByKind)
{
    const auto timeline = makeTimeline({
        {kMsec, kUsec, sim::InterruptKind::TimerTick},
        {2 * kMsec, kUsec, sim::InterruptKind::TimerTick},
        {3 * kMsec, kUsec, sim::InterruptKind::NetworkRx},
    });
    const auto counts =
        KernelTracer::countByKind(KernelTracer().record(timeline));
    EXPECT_EQ(counts[static_cast<int>(sim::InterruptKind::TimerTick)], 2u);
    EXPECT_EQ(counts[static_cast<int>(sim::InterruptKind::NetworkRx)], 1u);
}

TEST(GapDetector, FindsIsolatedGap)
{
    const auto timeline = makeTimeline(
        {{kMsec, 3 * kUsec, sim::InterruptKind::TimerTick}});
    const auto gaps = GapDetector().detect(timeline);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].start, kMsec);
    // Observed jump = stolen duration + one poll cost.
    EXPECT_EQ(gaps[0].length, 3 * kUsec + 30);
}

TEST(GapDetector, MergesBackToBackIntervals)
{
    // Softirq runs immediately after the tick handler: the attacker
    // observes a single merged gap (Figure 6's coupling).
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {kMsec + 2 * kUsec, 3 * kUsec, sim::InterruptKind::SoftirqNetRx},
    });
    const auto gaps = GapDetector().detect(timeline);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].length, 5 * kUsec + 30);
}

TEST(GapDetector, SeparatedIntervalsStaySeparate)
{
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {2 * kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
    });
    const auto gaps = GapDetector().detect(timeline);
    EXPECT_EQ(gaps.size(), 2u);
}

TEST(GapDetector, ThresholdFiltersSmallGaps)
{
    GapDetectorConfig config;
    config.threshold = 10 * kUsec;
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {2 * kMsec, 20 * kUsec, sim::InterruptKind::NetworkRx},
    });
    const auto gaps = GapDetector(config).detect(timeline);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].start, 2 * kMsec);
}

TEST(Attribution, JoinsGapsWithRecords)
{
    const auto timeline = makeTimeline({
        {kMsec, 3 * kUsec, sim::InterruptKind::ReschedIpi},
        {5 * kMsec, 2 * kUsec, sim::InterruptKind::UntraceableStall},
    });
    const auto gaps = GapDetector().detect(timeline);
    const auto records = KernelTracer().record(timeline);
    const auto attributed = attributeGaps(gaps, records);
    ASSERT_EQ(attributed.size(), 2u);
    EXPECT_TRUE(attributed[0].attributedToInterrupt);
    EXPECT_TRUE(attributed[0]
                    .kinds[static_cast<int>(sim::InterruptKind::ReschedIpi)]);
    // The SMI-like stall produced a gap with no tracer record.
    EXPECT_FALSE(attributed[1].attributedToAny);
}

TEST(Attribution, MergedGapCarriesAllKinds)
{
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {kMsec + 2 * kUsec, 3 * kUsec, sim::InterruptKind::IrqWork},
    });
    const auto attributed = attributeGaps(
        GapDetector().detect(timeline), KernelTracer().record(timeline));
    ASSERT_EQ(attributed.size(), 1u);
    EXPECT_TRUE(attributed[0]
                    .kinds[static_cast<int>(sim::InterruptKind::TimerTick)]);
    EXPECT_TRUE(
        attributed[0].kinds[static_cast<int>(sim::InterruptKind::IrqWork)]);
}

TEST(Attribution, SummaryCountsCorrectly)
{
    std::vector<AttributedGap> gaps(4);
    gaps[0].attributedToInterrupt = gaps[0].attributedToAny = true;
    gaps[1].attributedToInterrupt = gaps[1].attributedToAny = true;
    gaps[2].attributedToAny = true; // Preemption only.
    const auto report = summarize(gaps);
    EXPECT_EQ(report.totalGaps, 4u);
    EXPECT_DOUBLE_EQ(report.interruptFraction(), 0.5);
    EXPECT_DOUBLE_EQ(report.anyFraction(), 0.75);
}

TEST(Attribution, GapLengthsForKindSelects)
{
    const auto timeline = makeTimeline({
        {kMsec, 4 * kUsec, sim::InterruptKind::NetworkRx},
        {5 * kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
    });
    const auto attributed = attributeGaps(
        GapDetector().detect(timeline), KernelTracer().record(timeline));
    const auto net_lengths = gapLengthsForKind(
        attributed, sim::InterruptKind::NetworkRx);
    ASSERT_EQ(net_lengths.size(), 1u);
    // The NET_RX hard IRQ raises a softirq that runs right after it, so
    // the observed gap covers both handlers (plus one poll).
    EXPECT_GT(net_lengths[0], 4.0 * kUsec);
}

TEST(Dump, RecordsWindowAndFormat)
{
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {5 * kMsec, 3 * kUsec, sim::InterruptKind::ReschedIpi},
        {50 * kMsec, 2 * kUsec, sim::InterruptKind::NetworkRx},
    });
    const auto records = KernelTracer().record(timeline);
    std::ostringstream out;
    DumpOptions options;
    options.windowStart = 0;
    options.windowEnd = 10 * kMsec;
    dumpRecords(out, records, options);
    const std::string text = out.str();
    EXPECT_NE(text.find("timer_tick"), std::string::npos);
    EXPECT_NE(text.find("resched_ipi"), std::string::npos);
    // The 50 ms record is outside the window.
    EXPECT_EQ(text.find("net_rx_irq"), std::string::npos);
    EXPECT_NE(text.find("+1.000000ms"), std::string::npos);
}

TEST(Dump, RowCapIsEnforced)
{
    std::vector<sim::StolenInterval> stolen;
    for (int i = 0; i < 50; ++i)
        stolen.push_back({(i + 1) * 100 * kUsec, kUsec,
                          sim::InterruptKind::TimerTick});
    const auto timeline = makeTimeline(std::move(stolen));
    std::ostringstream out;
    DumpOptions options;
    options.windowEnd = 100 * kMsec;
    options.maxRows = 10;
    dumpRecords(out, KernelTracer().record(timeline), options);
    EXPECT_NE(out.str().find("row cap"), std::string::npos);
}

TEST(Dump, AttributedGapsShowCausesAndResidue)
{
    const auto timeline = makeTimeline({
        {kMsec, 2 * kUsec, sim::InterruptKind::TimerTick},
        {kMsec + 2 * kUsec, 3 * kUsec, sim::InterruptKind::IrqWork},
        {5 * kMsec, 2 * kUsec, sim::InterruptKind::UntraceableStall},
    });
    const auto attributed = attributeGaps(
        GapDetector().detect(timeline), KernelTracer().record(timeline));
    std::ostringstream out;
    dumpAttributedGaps(out, attributed);
    const std::string text = out.str();
    EXPECT_NE(text.find("timer_tick + irq_work"), std::string::npos);
    EXPECT_NE(text.find("??"), std::string::npos);
}

TEST(Attribution, PaperHeadlineOver99PercentOnRealWorkload)
{
    // Reproduce the Section 5.2 experiment end to end: synthesize a real
    // site load with IRQs pinned away, detect gaps >100 ns, join with
    // the tracer, and check that interrupts explain >99% of them.
    sim::MachineConfig config = sim::MachineConfig::linuxDesktop();
    config.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.pinnedCores = true;
    sim::InterruptSynthesizer synth(config);

    std::size_t total = 0, attributed_count = 0;
    for (int run = 0; run < 5; ++run) {
        Rng rng(900 + run);
        const auto activity = web::realizeWorkload(
            web::nytimesSignature(0), 15 * kSec, 1.0,
            web::RealizationNoise{}, rng);
        Rng synth_rng(950 + run);
        const auto timeline = synth.synthesize(activity, synth_rng);
        const auto report = summarize(attributeGaps(
            GapDetector().detect(timeline),
            KernelTracer().record(timeline)));
        total += report.totalGaps;
        attributed_count += report.attributedToInterrupt;
    }
    ASSERT_GT(total, 1000u);
    const double fraction =
        static_cast<double>(attributed_count) / static_cast<double>(total);
    EXPECT_GT(fraction, 0.99);
    EXPECT_LT(fraction, 1.0); // The untraceable residue exists.
}

} // namespace
} // namespace bigfish::ktrace
