/**
 * @file
 * Tests for the run-spec layer (src/spec): typed parameter resolution
 * across the layered sources, strict error reporting that names the
 * offending source, spec-file parsing (TOML and JSON, including the
 * emitted-artifact replay form), and lossless serialization
 * round-trips.
 */

#include "spec/spec.hh"

#include <gtest/gtest.h>

#include <map>

namespace bigfish::spec {
namespace {

ParamSchema
testSchema()
{
    ParamSchema schema;
    schema.addInt("sites", "BF_SITES", 20, 2, 1000, "closed-world sites")
        .addInt("seed", "BF_SEED", 2022, 0, 1000000, "master seed")
        .addDouble("rate", "", 0.5, "sampling rate")
        .addBool("paper-model", "", false, "paper hyperparameters")
        .addString("label", "", "default", "free-form label");
    return schema;
}

/** An EnvLookup over a fixed map (no process environment involved). */
EnvLookup
fakeEnv(std::map<std::string, std::string> vars)
{
    return [vars = std::move(vars)](
               const std::string &name) -> std::optional<std::string> {
        const auto it = vars.find(name);
        if (it == vars.end())
            return std::nullopt;
        return it->second;
    };
}

TEST(SpecResolve, DefaultsWhenNoSources)
{
    const auto resolved = resolveSpec("exp", testSchema(), SpecSources{});
    ASSERT_TRUE(resolved.isOk());
    const RunSpec &spec = resolved.value();
    EXPECT_EQ(spec.experiment(), "exp");
    EXPECT_EQ(spec.getInt("sites"), 20);
    EXPECT_EQ(spec.getInt("seed"), 2022);
    EXPECT_DOUBLE_EQ(spec.getDouble("rate"), 0.5);
    EXPECT_FALSE(spec.getBool("paper-model"));
    EXPECT_EQ(spec.getString("label"), "default");
}

TEST(SpecResolve, EnvironmentOverridesDefaults)
{
    SpecSources sources;
    sources.env = fakeEnv({{"BF_SITES", "50"}, {"BF_SEED", "7"}});
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_TRUE(resolved.isOk());
    EXPECT_EQ(resolved.value().getInt("sites"), 50);
    EXPECT_EQ(resolved.value().getInt("seed"), 7);
}

TEST(SpecResolve, GarbageEnvironmentNamesTheVariable)
{
    SpecSources sources;
    sources.env = fakeEnv({{"BF_SITES", "abc"}});
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_EQ(resolved.status().code(), ErrorCode::ParseError);
    EXPECT_NE(resolved.status().message().find(
                  "environment variable BF_SITES"),
              std::string::npos)
        << resolved.status().message();
}

TEST(SpecResolve, PartiallyNumericEnvironmentIsAnError)
{
    // The old atol()-based parser silently read "12abc" as 12.
    SpecSources sources;
    sources.env = fakeEnv({{"BF_SITES", "12abc"}});
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_NE(resolved.status().message().find("BF_SITES"),
              std::string::npos);
}

TEST(SpecResolve, OutOfRangeNamesSourceAndRange)
{
    SpecSources sources;
    sources.flags = {{"sites", "1"}};
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_EQ(resolved.status().code(), ErrorCode::OutOfRange);
    EXPECT_NE(resolved.status().message().find("flag --sites"),
              std::string::npos);
    EXPECT_NE(resolved.status().message().find("[2, 1000]"),
              std::string::npos);
}

TEST(SpecResolve, LayerPrecedenceFlagsBeatSpecBeatPresetBeatEnv)
{
    SpecSources sources;
    sources.env = fakeEnv({{"BF_SITES", "30"}, {"BF_SEED", "1"}});
    sources.presets = {{"sites", "40"}};
    sources.specText = "sites = 50\nrate = 0.25\n";
    sources.specName = "test.toml";
    sources.flags = {{"sites", "60"}};
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_TRUE(resolved.isOk());
    EXPECT_EQ(resolved.value().getInt("sites"), 60);  // flag wins
    EXPECT_EQ(resolved.value().getInt("seed"), 1);    // env survives
    EXPECT_DOUBLE_EQ(resolved.value().getDouble("rate"), 0.25);
}

TEST(SpecResolve, UnknownFlagRejected)
{
    SpecSources sources;
    sources.flags = {{"bogus", "1"}};
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_NE(resolved.status().message().find("unknown flag --bogus"),
              std::string::npos);
}

TEST(SpecResolve, UnknownSpecFileKeyRejected)
{
    SpecSources sources;
    sources.specText = "bogus = 1\n";
    sources.specName = "test.toml";
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_NE(resolved.status().message().find("unknown key \"bogus\""),
              std::string::npos);
}

TEST(SpecResolve, SpecFileExperimentMismatchRejected)
{
    SpecSources sources;
    sources.specText = "experiment = \"other\"\nsites = 5\n";
    sources.specName = "test.toml";
    const auto resolved = resolveSpec("exp", testSchema(), sources);
    ASSERT_FALSE(resolved.isOk());
    EXPECT_NE(resolved.status().message().find("other"),
              std::string::npos);
}

TEST(SpecResolve, BoolSpellings)
{
    for (const char *truthy : {"true", "1"}) {
        SpecSources sources;
        sources.flags = {{"paper-model", truthy}};
        const auto resolved = resolveSpec("exp", testSchema(), sources);
        ASSERT_TRUE(resolved.isOk());
        EXPECT_TRUE(resolved.value().getBool("paper-model"));
    }
    SpecSources bad;
    bad.flags = {{"paper-model", "yes"}};
    EXPECT_FALSE(resolveSpec("exp", testSchema(), bad).isOk());
}

TEST(SpecFileParse, TomlCommentsQuotesAndWhitespace)
{
    const auto parsed = parseSpecText("# a run spec\n"
                                      "experiment = \"exp\"\n"
                                      "sites = 50   # inline comment\n"
                                      "label = \"with # not a comment\"\n"
                                      "\n",
                                      "test.toml");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().experiment, "exp");
    ASSERT_EQ(parsed.value().entries.size(), 2u);
    EXPECT_EQ(parsed.value().entries[0].first, "sites");
    EXPECT_EQ(parsed.value().entries[0].second, "50");
    EXPECT_EQ(parsed.value().entries[1].second, "with # not a comment");
}

TEST(SpecFileParse, TomlSectionsRejected)
{
    const auto parsed = parseSpecText("[scale]\nsites = 5\n", "t.toml");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_EQ(parsed.status().code(), ErrorCode::ParseError);
}

TEST(SpecFileParse, FlatJsonObject)
{
    const auto parsed = parseSpecText(
        "{\"experiment\": \"exp\", \"sites\": 50, \"paper-model\": true}",
        "t.json");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().experiment, "exp");
    ASSERT_EQ(parsed.value().entries.size(), 2u);
}

TEST(SpecFileParse, ArtifactJsonUsesSpecSubObject)
{
    // The emitted artifact embeds the resolved spec under "spec";
    // every other top-level key (metrics, phases, ...) is ignored.
    const auto parsed = parseSpecText(
        "{\n"
        "  \"experiment\": \"exp\",\n"
        "  \"threads\": 4,\n"
        "  \"spec\": {\"sites\": 50, \"rate\": 0.25},\n"
        "  \"phases\": {\"collectSeconds\": 1.0},\n"
        "  \"metrics\": {\"x_top1\": 0.5}\n"
        "}\n",
        "artifact.json");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().experiment, "exp");
    ASSERT_EQ(parsed.value().entries.size(), 2u);
    EXPECT_EQ(parsed.value().entries[0].first, "sites");
    EXPECT_EQ(parsed.value().entries[1].first, "rate");
}

TEST(SpecFileParse, ArtifactSchemaVersionUpToCurrentAccepted)
{
    // v1 artifacts carry no schemaVersion at all; v2 artifacts carry
    // the current version. Both must replay.
    const auto v1 = parseSpecText(
        "{\"experiment\": \"exp\", \"spec\": {\"sites\": 50}}",
        "old-artifact.json");
    ASSERT_TRUE(v1.isOk());
    EXPECT_EQ(v1.value().entries.size(), 1u);

    const auto v2 = parseSpecText(
        "{\"schemaVersion\": " + std::to_string(kArtifactSchemaVersion) +
            ", \"experiment\": \"exp\", \"spec\": {\"sites\": 50}}",
        "artifact.json");
    ASSERT_TRUE(v2.isOk());
    EXPECT_EQ(v2.value().experiment, "exp");
    EXPECT_EQ(v2.value().entries.size(), 1u);
}

TEST(SpecFileParse, ArtifactNewerSchemaVersionRejectedByName)
{
    const auto parsed = parseSpecText(
        "{\"schemaVersion\": 99, \"experiment\": \"exp\", "
        "\"spec\": {\"sites\": 50}}",
        "future.json");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_EQ(parsed.status().code(), ErrorCode::ParseError);
    // The error names both the found and the supported version.
    EXPECT_NE(parsed.status().message().find("schemaVersion 99"),
              std::string::npos)
        << parsed.status().message();
    EXPECT_NE(parsed.status().message().find(
                  std::to_string(kArtifactSchemaVersion)),
              std::string::npos)
        << parsed.status().message();
}

TEST(SpecFileParse, ArtifactMalformedSchemaVersionRejected)
{
    EXPECT_FALSE(parseSpecText("{\"schemaVersion\": \"two\", "
                               "\"spec\": {\"sites\": 5}}",
                               "bad.json")
                     .isOk());
    EXPECT_FALSE(parseSpecText("{\"schemaVersion\": 0, "
                               "\"spec\": {\"sites\": 5}}",
                               "bad.json")
                     .isOk());
}

TEST(SpecFileParse, MalformedJsonRejected)
{
    EXPECT_FALSE(parseSpecText("{\"sites\": }", "t.json").isOk());
    EXPECT_FALSE(parseSpecText("{\"sites\": 5", "t.json").isOk());
    EXPECT_FALSE(parseSpecText("{} trailing", "t.json").isOk());
    EXPECT_FALSE(parseSpecText("", "t.json").isOk());
}

TEST(SpecRoundTrip, JsonSerializeReparseResolveEquality)
{
    SpecSources sources;
    sources.flags = {{"sites", "123"},
                     {"rate", "0.125"},
                     {"paper-model", "true"},
                     {"label", "quoted \"inner\" text"}};
    const auto original = resolveSpec("exp", testSchema(), sources);
    ASSERT_TRUE(original.isOk());

    SpecSources replay;
    replay.specText = original.value().toJson();
    replay.specName = "emitted.json";
    const auto reparsed = resolveSpec("exp", testSchema(), replay);
    ASSERT_TRUE(reparsed.isOk());
    EXPECT_EQ(original.value(), reparsed.value());
}

TEST(SpecRoundTrip, TomlSerializeReparseResolveEquality)
{
    SpecSources sources;
    sources.flags = {{"seed", "999"}, {"rate", "0.333333333333333"}};
    const auto original = resolveSpec("exp", testSchema(), sources);
    ASSERT_TRUE(original.isOk());

    SpecSources replay;
    replay.specText = original.value().toToml();
    replay.specName = "emitted.toml";
    const auto reparsed = resolveSpec("exp", testSchema(), replay);
    ASSERT_TRUE(reparsed.isOk());
    EXPECT_EQ(original.value(), reparsed.value());
}

TEST(SpecHelp, MentionsEveryParameterAndEnv)
{
    const std::string help = helpText(testSchema());
    for (const char *needle :
         {"--sites=<int>", "BF_SITES", "--rate=<double>",
          "--paper-model=<bool>", "--label=<string>", "default 20"})
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
}

} // namespace
} // namespace bigfish::spec
