/**
 * @file
 * Cross-module integration tests: small-scale versions of the paper's
 * headline comparisons, checking *shape* relations the full benchmark
 * harness reproduces at larger scale.
 *
 * These tests intentionally run the real pipeline end to end (workload
 * realization -> interrupt synthesis -> attacker -> featurization ->
 * classifier) at reduced scale so they stay fast.
 */

#include <gtest/gtest.h>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ktrace/attribution.hh"

namespace bigfish {
namespace {

/** Small, fast evaluation used across the integration tests. */
core::PipelineConfig
smallPipeline()
{
    core::PipelineConfig pipeline;
    pipeline.numSites = 6;
    pipeline.tracesPerSite = 10;
    pipeline.featureLen = 192;
    pipeline.eval.folds = 5;
    pipeline.factory = ml::knnFactory(3);
    return pipeline;
}

double
accuracyOf(const core::CollectionConfig &config,
           core::PipelineConfig pipeline = smallPipeline())
{
    return core::runFingerprintingOrDie(config, pipeline).closedWorld.top1Mean;
}

TEST(Integration, LoopAttackBeatsChanceByWideMargin)
{
    core::CollectionConfig config;
    config.seed = 11;
    EXPECT_GT(accuracyOf(config), 0.7); // Chance: 1/6.
}

TEST(Integration, SweepAttackAlsoWorksButWorse)
{
    // Table 2's controlled comparison: same machine, same sites; the
    // sweep-counting attacker's coarse counter loses accuracy.
    core::CollectionConfig loop;
    loop.seed = 12;
    core::CollectionConfig sweep = loop;
    sweep.attacker = attack::AttackerKind::SweepCounting;
    const double loop_acc = accuracyOf(loop);
    const double sweep_acc = accuracyOf(sweep);
    EXPECT_GT(sweep_acc, 0.4); // Still a working attack...
    EXPECT_GE(loop_acc, sweep_acc); // ...but not better than loop-counting.
}

TEST(Integration, InterruptNoiseHurtsMoreThanCacheNoise)
{
    // Table 2's key asymmetry, on the loop-counting attacker.
    core::CollectionConfig plain;
    plain.seed = 13;
    core::CollectionConfig cache_noise = plain;
    cache_noise.cacheSweepNoise = true;
    core::CollectionConfig irq_noise = plain;
    irq_noise.spuriousInterruptNoise = true;

    const double base = accuracyOf(plain);
    const double with_cache = accuracyOf(cache_noise);
    const double with_irq = accuracyOf(irq_noise);
    EXPECT_LT(with_irq, base);
    // Interrupt noise must hurt clearly more than cache noise.
    EXPECT_LT(with_irq, with_cache - 0.05);
}

TEST(Integration, RandomizedTimerCollapsesAccuracy)
{
    // Table 4: the randomized timer drives the attack to near chance.
    core::CollectionConfig plain;
    plain.seed = 14;
    core::CollectionConfig defended = plain;
    defended.timerOverride = timers::TimerSpec::randomizedDefense();
    const double base = accuracyOf(plain);
    const double with_defense = accuracyOf(defended);
    EXPECT_GT(base, 0.7);
    EXPECT_LT(with_defense, 0.45);
}

TEST(Integration, QuantizedTimerDegradesLessThanRandomized)
{
    core::CollectionConfig quantized;
    quantized.seed = 15;
    quantized.timerOverride = timers::TimerSpec::quantized(100 * kMsec);
    core::CollectionConfig randomized = quantized;
    randomized.timerOverride = timers::TimerSpec::randomizedDefense();
    EXPECT_GT(accuracyOf(quantized), accuracyOf(randomized));
}

TEST(Integration, IrqPinningReducesButDoesNotStopAttack)
{
    // Table 3, row 4: removing movable IRQs costs accuracy but the
    // non-movable residue keeps the attack alive.
    core::CollectionConfig defaults;
    defaults.seed = 16;
    defaults.browser = web::BrowserProfile::nativePython();
    core::CollectionConfig pinned = defaults;
    pinned.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    pinned.machine.pinnedCores = true;
    const double base = accuracyOf(defaults);
    const double isolated = accuracyOf(pinned);
    EXPECT_GT(base, 0.7);
    EXPECT_GT(isolated, 0.5); // Still far above 1/6 chance.
}

TEST(Integration, GapAttributionHoldsUnderTheAttackConfig)
{
    // The ktrace methodology applied to the exact timelines the
    // collector produces for the Python attacker.
    core::CollectionConfig config;
    config.seed = 17;
    config.browser = web::BrowserProfile::nativeRust();
    config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.machine.pinnedCores = true;
    const core::TraceCollector collector(config);
    const auto timeline =
        collector.synthesizeTimeline(web::weatherSignature(2), 0);
    const auto report = ktrace::summarize(ktrace::attributeGaps(
        ktrace::GapDetector().detect(timeline),
        ktrace::KernelTracer().record(timeline)));
    ASSERT_GT(report.totalGaps, 500u);
    EXPECT_GT(report.interruptFraction(), 0.985);
}

TEST(Integration, TracesReproducibleAcrossProcessRestarts)
{
    // Golden values: catching accidental changes to any stage of the
    // pipeline (workload realization, synthesis, engine, timers).
    core::CollectionConfig config;
    config.seed = 424242;
    const core::TraceCollector collector(config);
    const auto trace =
        collector.collectOneOrDie(web::nytimesSignature(0), 0);
    ASSERT_GT(trace.size(), 2900u);
    // Self-consistency rather than brittle exact values: re-collect.
    const auto again = collector.collectOneOrDie(web::nytimesSignature(0), 0);
    ASSERT_EQ(trace.counts.size(), again.counts.size());
    for (std::size_t i = 0; i < trace.counts.size(); i += 97)
        EXPECT_DOUBLE_EQ(trace.counts[i], again.counts[i]);
}

TEST(Integration, VmIsolationDoesNotStopTheAttack)
{
    // Table 3, last row: VMs fail to mitigate (and can amplify).
    core::CollectionConfig vm;
    vm.seed = 18;
    vm.browser = web::BrowserProfile::nativePython();
    vm.machine.vmIsolation = true;
    vm.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    vm.machine.pinnedCores = true;
    EXPECT_GT(accuracyOf(vm), 0.5);
}

} // namespace
} // namespace bigfish
