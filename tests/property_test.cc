/**
 * @file
 * Property-based tests: invariants that must hold for *every*
 * combination of attacker, timer, browser and machine configuration.
 * These sweep the configuration space with parameterized gtest suites
 * rather than checking single hand-picked cases.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/collector.hh"
#include "ktrace/attribution.hh"
#include "web/catalog.hh"

namespace bigfish {
namespace {

/** The timer specs swept by the properties. */
std::vector<timers::TimerSpec>
timerSpecs()
{
    return {
        timers::TimerSpec::precise(),
        timers::TimerSpec::jittered(100 * kUsec),
        timers::TimerSpec::quantized(kMsec),
        timers::TimerSpec::quantized(100 * kMsec),
        timers::TimerSpec::randomizedDefense(),
    };
}

/** The machine configs swept by the properties. */
std::vector<sim::MachineConfig>
machineConfigs()
{
    auto pinned = sim::MachineConfig::linuxDesktop();
    pinned.pinnedCores = true;
    pinned.routing = sim::IrqRoutingPolicy::PinnedAway;
    auto vm = sim::MachineConfig::linuxDesktop();
    vm.vmIsolation = true;
    return {
        sim::MachineConfig::linuxDesktop(),
        sim::MachineConfig::windowsWorkstation(),
        sim::MachineConfig::macbook(),
        pinned,
        vm,
    };
}

using AttackCase = std::tuple<int /*attacker*/, int /*timer*/,
                              int /*machine*/>;

class AttackProperties : public ::testing::TestWithParam<AttackCase>
{
  protected:
    core::CollectionConfig
    makeConfig() const
    {
        core::CollectionConfig config;
        config.attacker =
            std::get<0>(GetParam()) == 0 ? attack::AttackerKind::LoopCounting
                                         : attack::AttackerKind::SweepCounting;
        config.timerOverride =
            timerSpecs()[static_cast<std::size_t>(std::get<1>(GetParam()))];
        config.machine = machineConfigs()[static_cast<std::size_t>(
            std::get<2>(GetParam()))];
        // Short traces keep the sweep fast: override the browser length.
        config.browser = web::BrowserProfile::chrome();
        config.browser.traceDuration = 3 * kSec;
        config.seed = 97;
        return config;
    }
};

TEST_P(AttackProperties, TraceIsSaneAndDeterministic)
{
    const auto config = makeConfig();
    const core::TraceCollector collector(config);
    const auto site = web::amazonSignature(1);
    const auto trace = collector.collectOneOrDie(site, 0);

    // Non-empty, all counts >= 1 (do-while semantics), wall times cover
    // the run without exceeding it.
    ASSERT_GT(trace.size(), 0u);
    TimeNs wall_total = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_GE(trace.counts[i], 1.0);
        EXPECT_GT(trace.wallTimes[i], 0);
        wall_total += trace.wallTimes[i];
    }
    EXPECT_LE(wall_total, config.browser.traceDuration + 100 * kMsec);

    // Bit-identical on re-collection.
    const auto again = collector.collectOneOrDie(site, 0);
    ASSERT_EQ(trace.counts.size(), again.counts.size());
    for (std::size_t i = 0; i < trace.counts.size(); ++i)
        EXPECT_DOUBLE_EQ(trace.counts[i], again.counts[i]);
}

TEST_P(AttackProperties, PeriodsRespectTimerSemantics)
{
    const auto config = makeConfig();
    const core::TraceCollector collector(config);
    const auto trace = collector.collectOneOrDie(web::nytimesSignature(0), 1);
    const TimeNs period = config.effectivePeriod();
    const auto spec = config.effectiveTimer();

    for (std::size_t i = 0; i + 1 < trace.wallTimes.size(); ++i) {
        const TimeNs wall = trace.wallTimes[i];
        switch (spec.kind) {
          case timers::TimerKind::Precise:
            // Real elapsed time is at least P (observed == real).
            EXPECT_GE(wall, period);
            break;
          case timers::TimerKind::Quantized: {
            // t_begin is quantized *down* by up to one quantum, so the
            // period can end up to A of real time early...
            EXPECT_GE(wall, period - spec.resolution);
            // ...and at most one extra quantum late (plus handler
            // overshoot).
            EXPECT_LE(wall, period + spec.resolution + 50 * kMsec);
            break;
          }
          case timers::TimerKind::Jittered:
            // Jitter can end a period up to 2A early.
            EXPECT_GE(wall, period - 2 * spec.resolution);
            break;
          case timers::TimerKind::Randomized:
            // Anything between "instant" and the catch-up threshold.
            EXPECT_LE(wall,
                      period + spec.randomized.threshold +
                          2 * spec.randomized.resolution + 50 * kMsec);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttackProperties,
    ::testing::Combine(::testing::Range(0, 2), ::testing::Range(0, 5),
                       ::testing::Range(0, 5)));

class MachineProperties
    : public ::testing::TestWithParam<int>
{
};

TEST_P(MachineProperties, SynthesizedTimelinesAreWellFormed)
{
    const auto machine = machineConfigs()[static_cast<std::size_t>(
        GetParam())];
    sim::InterruptSynthesizer synth(machine);
    Rng workload_rng(5);
    const auto activity = web::realizeWorkload(
        web::weatherSignature(2), 5 * kSec, 1.0, web::RealizationNoise{},
        workload_rng);
    Rng rng(6);
    const auto timeline = synth.synthesize(activity, rng);

    ASSERT_FALSE(timeline.stolen.empty());
    for (std::size_t i = 0; i < timeline.stolen.size(); ++i) {
        const auto &s = timeline.stolen[i];
        EXPECT_GE(s.arrival, 0);
        EXPECT_GT(s.duration, 0);
        EXPECT_LE(s.end(), timeline.duration);
        if (i > 0) {
            EXPECT_GE(s.arrival, timeline.stolen[i - 1].end());
        }
    }
    for (double f : timeline.iterCostFactor) {
        EXPECT_GT(f, 0.4);
        EXPECT_LT(f, 2.0);
    }
    for (double o : timeline.occupancy) {
        EXPECT_GE(o, 0.0);
        EXPECT_LE(o, 1.0);
    }
}

TEST_P(MachineProperties, GapAttributionNeverBelow95Percent)
{
    // The >99% result is config-specific, but on *every* machine the
    // overwhelming majority of gaps must be explained by the tracer.
    const auto machine = machineConfigs()[static_cast<std::size_t>(
        GetParam())];
    sim::InterruptSynthesizer synth(machine);
    Rng workload_rng(7);
    const auto activity = web::realizeWorkload(
        web::nytimesSignature(0), 5 * kSec, 1.0, web::RealizationNoise{},
        workload_rng);
    Rng rng(8);
    const auto timeline = synth.synthesize(activity, rng);
    const auto report = ktrace::summarize(ktrace::attributeGaps(
        ktrace::GapDetector().detect(timeline),
        ktrace::KernelTracer().record(timeline)));
    ASSERT_GT(report.totalGaps, 100u);
    EXPECT_GT(report.anyFraction(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineProperties,
                         ::testing::Range(0, 5));

class SitePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SitePropertyTest, EverySiteYieldsDistinctButStableWorkloads)
{
    const web::SiteCatalog catalog(24, 7);
    const auto &site = catalog.site(GetParam());

    Rng r1(100), r2(100), r3(101);
    const auto a = web::realizeWorkload(site, 15 * kSec, 1.0,
                                        web::RealizationNoise{}, r1);
    const auto b = web::realizeWorkload(site, 15 * kSec, 1.0,
                                        web::RealizationNoise{}, r2);
    const auto c = web::realizeWorkload(site, 15 * kSec, 1.0,
                                        web::RealizationNoise{}, r3);

    double same = 0.0, diff = 0.0, total = 0.0;
    for (std::size_t i = 0; i < a.numIntervals(); ++i) {
        same += std::abs(a.at(i).netRxRate - b.at(i).netRxRate);
        diff += std::abs(a.at(i).netRxRate - c.at(i).netRxRate);
        total += a.at(i).netRxRate;
    }
    EXPECT_DOUBLE_EQ(same, 0.0); // Same seed: identical realization.
    if (total > 0.0) {
        EXPECT_GT(diff, 0.0); // Different run: some variation.
    }
}

INSTANTIATE_TEST_SUITE_P(Sites, SitePropertyTest, ::testing::Range(0, 24));

} // namespace
} // namespace bigfish
