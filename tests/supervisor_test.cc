/**
 * @file
 * Tests for the resilience layer: base/atomic_file, base/retry, and the
 * core suite supervisor (manifest accounting, keep-going and skip
 * semantics, deterministic retries, subprocess isolation via /bin/sh
 * children, interrupt handling).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/atomic_file.hh"
#include "base/retry.hh"
#include "core/supervisor.hh"

namespace bigfish::core {
namespace {

std::string
testDir(const std::string &leaf)
{
    // Fresh per-test directory: marker files and manifests from an
    // earlier test run must not leak in.
    const std::string dir = testing::TempDir() + "bf_supervisor_" + leaf;
    std::error_code ignored;
    std::filesystem::remove_all(dir, ignored);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------
// base/atomic_file
// ---------------------------------------------------------------------

TEST(AtomicFile, CreateDirectoriesMakesNestedPathsAndIsIdempotent)
{
    const std::string dir = testDir("mkdir") + "/a/b/c";
    ASSERT_TRUE(createDirectories(dir).isOk());
    ASSERT_TRUE(createDirectories(dir).isOk()); // Already exists: OK.
    ASSERT_TRUE(atomicWriteFile(dir + "/probe", "x").isOk());
}

TEST(AtomicFile, CreateDirectoriesFailsThroughARegularFile)
{
    const std::string dir = testDir("mkdir_conflict");
    ASSERT_TRUE(createDirectories(dir).isOk());
    ASSERT_TRUE(atomicWriteFile(dir + "/file", "not a dir").isOk());
    const Status bad = createDirectories(dir + "/file/sub");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), ErrorCode::IoError);
    EXPECT_NE(bad.message().find(dir + "/file"), std::string::npos)
        << "error must name the offending path: " << bad.message();
}

TEST(AtomicFile, WriteReplacesContentAndLeavesNoTempBehind)
{
    const std::string dir = testDir("atomic");
    ASSERT_TRUE(createDirectories(dir).isOk());
    const std::string path = dir + "/artifact.json";
    ASSERT_TRUE(atomicWriteFile(path, "first").isOk());
    EXPECT_EQ(slurp(path), "first");
    ASSERT_TRUE(atomicWriteFile(path, "second, longer content").isOk());
    EXPECT_EQ(slurp(path), "second, longer content");
    // Temp names are unique per writer (<path>.tmp.<pid>.<serial>);
    // none may survive a successful write.
    for (const auto &item : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(item.path().filename().string().find(".tmp"),
                  std::string::npos)
            << "temp file left behind: " << item.path();
}

TEST(AtomicFile, WriteIntoMissingDirectoryReturnsIoErrorNamingPath)
{
    const std::string path = testDir("missing") + "/nope/artifact.json";
    const Status bad = atomicWriteFile(path, "content");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), ErrorCode::IoError);
    EXPECT_NE(bad.message().find("artifact.json"), std::string::npos);
}

// ---------------------------------------------------------------------
// base/retry
// ---------------------------------------------------------------------

TEST(RetryPolicy, RetriesOnlyTransientErrorsWithinBudget)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    EXPECT_TRUE(policy.shouldRetry(ioError("disk hiccup"), 1));
    EXPECT_TRUE(policy.shouldRetry(exhaustedError("degraded round"), 2));
    EXPECT_FALSE(policy.shouldRetry(ioError("disk hiccup"), 3));
    EXPECT_FALSE(policy.shouldRetry(invalidArgumentError("bad flag"), 1));
    EXPECT_FALSE(policy.shouldRetry(parseError("bad spec"), 1));
    EXPECT_FALSE(policy.shouldRetry(Status::ok(), 1));
    EXPECT_FALSE(RetryPolicy::none().shouldRetry(ioError("x"), 1));
}

TEST(RetryPolicy, DelaysAreDeterministicJitteredAndClamped)
{
    RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.baseDelaySeconds = 1.0;
    policy.backoffMultiplier = 2.0;
    policy.maxDelaySeconds = 4.0;
    policy.jitterFraction = 0.25;
    policy.seed = 42;

    const std::uint64_t salt = retrySalt("table1_fingerprinting");
    for (int attempt = 1; attempt <= 6; ++attempt) {
        const double a = policy.delaySeconds(attempt, salt);
        const double b = policy.delaySeconds(attempt, salt);
        EXPECT_EQ(a, b) << "same inputs must give the same delay";
        const double nominal =
            std::min(policy.maxDelaySeconds, 1.0 * (1 << (attempt - 1)));
        EXPECT_GE(a, nominal * 0.75 - 1e-12);
        EXPECT_LE(a, nominal * 1.25 + 1e-12);
    }

    // Different salts decorrelate the jitter streams.
    std::set<double> delays;
    for (int i = 0; i < 8; ++i)
        delays.insert(policy.delaySeconds(
            1, retrySalt("experiment_" + std::to_string(i))));
    EXPECT_GT(delays.size(), 1u);

    // Zero jitter means the schedule is exactly the backoff curve.
    policy.jitterFraction = 0.0;
    EXPECT_EQ(policy.delaySeconds(1, salt), 1.0);
    EXPECT_EQ(policy.delaySeconds(2, salt), 2.0);
    EXPECT_EQ(policy.delaySeconds(3, salt), 4.0);
    EXPECT_EQ(policy.delaySeconds(4, salt), 4.0); // Clamped.
}

TEST(RetryPolicy, SaltIsAStableHash)
{
    EXPECT_EQ(retrySalt("abc"), retrySalt("abc"));
    EXPECT_NE(retrySalt("abc"), retrySalt("abd"));
    EXPECT_NE(retrySalt(""), retrySalt("a"));
}

// ---------------------------------------------------------------------
// SuiteManifest
// ---------------------------------------------------------------------

ExperimentOutcome
outcome(const std::string &name, RunState state, int attempts = 1)
{
    ExperimentOutcome o;
    o.name = name;
    o.state = state;
    o.attempts = attempts;
    return o;
}

TEST(SuiteManifest, CountsStatesAndComputesExitCodes)
{
    SuiteManifest m;
    m.outcomes.push_back(outcome("a", RunState::Ok));
    m.outcomes.push_back(outcome("b", RunState::Retried, 2));
    EXPECT_TRUE(m.allOk());
    EXPECT_EQ(m.exitCode(), 0);
    EXPECT_EQ(m.count(RunState::Ok), 1u);
    EXPECT_EQ(m.count(RunState::Retried), 1u);

    m.outcomes.push_back(outcome("c", RunState::Crashed));
    EXPECT_FALSE(m.allOk());
    EXPECT_EQ(m.exitCode(), 1);

    m.interrupted = true;
    EXPECT_EQ(m.exitCode(), 130);
}

TEST(SuiteManifest, JsonCarriesPerExperimentRecordsAndWritesAtomically)
{
    SuiteManifest m;
    ExperimentOutcome o = outcome("table1", RunState::Failed, 3);
    o.exitCode = 1;
    o.wallSeconds = 1.5;
    o.message = "child exited with code 1";
    o.collectedTraces = 120;
    o.droppedTraces = 3;
    o.artifactPath = "/tmp/out/table1.json";
    m.outcomes.push_back(o);

    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"name\": \"table1\""), std::string::npos);
    EXPECT_NE(json.find("\"state\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"traces\": {\"collected\": 120, \"dropped\": 3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"exitCode\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"interrupted\": false"), std::string::npos);

    const std::string dir = testDir("manifest");
    ASSERT_TRUE(createDirectories(dir).isOk());
    ASSERT_TRUE(m.write(dir + "/suite-manifest.json").isOk());
    EXPECT_EQ(slurp(dir + "/suite-manifest.json"), json);
}

TEST(SuiteManifest, ParseTraceAccountingRoundTrips)
{
    std::size_t collected = 0, dropped = 0;
    EXPECT_TRUE(parseTraceAccounting(
        "{\n  \"traces\": {\"collected\": 42, \"dropped\": 7},\n}",
        &collected, &dropped));
    EXPECT_EQ(collected, 42u);
    EXPECT_EQ(dropped, 7u);
    EXPECT_FALSE(parseTraceAccounting("{}", &collected, &dropped));
    EXPECT_FALSE(
        parseTraceAccounting("\"traces\": oops", &collected, &dropped));
}

// ---------------------------------------------------------------------
// Supervisor — in-process mode
// ---------------------------------------------------------------------

/** A retry policy with effectively-zero sleeps, for fast tests. */
RetryPolicy
fastRetry(int max_attempts)
{
    RetryPolicy policy;
    policy.maxAttempts = max_attempts;
    policy.baseDelaySeconds = 0.001;
    policy.maxDelaySeconds = 0.001;
    policy.jitterFraction = 0.0;
    return policy;
}

ChildPlan
noChild(const std::string &)
{
    return ChildPlan{};
}

TEST(Supervisor, RetriesTransientFailuresDeterministically)
{
    SupervisorOptions options;
    options.retry = fastRetry(3);
    int calls = 0;
    const SuiteManifest m = Supervisor(options).run(
        {"flaky"},
        [&](const std::string &, ExperimentOutcome &) -> Status {
            ++calls;
            if (calls < 3)
                return ioError("transient");
            return Status::ok();
        },
        noChild);
    EXPECT_EQ(calls, 3);
    ASSERT_EQ(m.outcomes.size(), 1u);
    EXPECT_EQ(m.outcomes[0].state, RunState::Retried);
    EXPECT_EQ(m.outcomes[0].attempts, 3);
    EXPECT_EQ(m.exitCode(), 0);
}

TEST(Supervisor, PermanentErrorsAreNotRetried)
{
    SupervisorOptions options;
    options.retry = fastRetry(5);
    int calls = 0;
    const SuiteManifest m = Supervisor(options).run(
        {"broken"},
        [&](const std::string &, ExperimentOutcome &) -> Status {
            ++calls;
            return invalidArgumentError("bad config");
        },
        noChild);
    EXPECT_EQ(calls, 1) << "InvalidArgument must not burn retries";
    EXPECT_EQ(m.outcomes[0].state, RunState::Failed);
    EXPECT_NE(m.outcomes[0].message.find("bad config"), std::string::npos);
    EXPECT_EQ(m.exitCode(), 1);
}

TEST(Supervisor, FailureSkipsRemainderWithoutKeepGoing)
{
    SupervisorOptions options;
    std::vector<std::string> ran;
    const auto run = [&](const std::string &name,
                         ExperimentOutcome &) -> Status {
        ran.push_back(name);
        return name == "b" ? ioError("boom") : Status::ok();
    };
    const SuiteManifest m =
        Supervisor(options).run({"a", "b", "c", "d"}, run, noChild);
    EXPECT_EQ(ran, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(m.outcomes[0].state, RunState::Ok);
    EXPECT_EQ(m.outcomes[1].state, RunState::Failed);
    EXPECT_EQ(m.outcomes[2].state, RunState::Skipped);
    EXPECT_EQ(m.outcomes[3].state, RunState::Skipped);
    EXPECT_EQ(m.outcomes[2].attempts, 0);
    EXPECT_EQ(m.exitCode(), 1);
}

TEST(Supervisor, KeepGoingRunsEverythingAndStillFailsTheSuite)
{
    SupervisorOptions options;
    options.keepGoing = true;
    std::vector<std::string> ran;
    const auto run = [&](const std::string &name,
                         ExperimentOutcome &) -> Status {
        ran.push_back(name);
        return name == "b" ? ioError("boom") : Status::ok();
    };
    const SuiteManifest m =
        Supervisor(options).run({"a", "b", "c"}, run, noChild);
    EXPECT_EQ(ran, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(m.outcomes[2].state, RunState::Ok);
    EXPECT_FALSE(m.allOk());
    EXPECT_EQ(m.exitCode(), 1);
}

TEST(Supervisor, InterruptSkipsRemainingExperimentsAndExits130)
{
    static volatile std::sig_atomic_t interrupted = 0;
    interrupted = 0;
    SupervisorOptions options;
    options.interrupted = &interrupted;
    const auto run = [&](const std::string &name,
                         ExperimentOutcome &) -> Status {
        if (name == "a")
            interrupted = 1; // Signal arrives mid-first-experiment.
        return Status::ok();
    };
    const SuiteManifest m =
        Supervisor(options).run({"a", "b", "c"}, run, noChild);
    EXPECT_TRUE(m.interrupted);
    EXPECT_EQ(m.outcomes[0].state, RunState::Ok);
    EXPECT_EQ(m.outcomes[1].state, RunState::Skipped);
    EXPECT_EQ(m.outcomes[2].state, RunState::Skipped);
    EXPECT_EQ(m.exitCode(), 130);
}

TEST(Supervisor, ManifestIsFlushedAfterEveryExperiment)
{
    const std::string dir = testDir("flush");
    ASSERT_TRUE(createDirectories(dir).isOk());
    SupervisorOptions options;
    options.keepGoing = true;
    options.manifestPath = dir + "/suite-manifest.json";

    std::vector<std::string> snapshots;
    const auto run = [&](const std::string &,
                         ExperimentOutcome &) -> Status {
        // Capture what was on disk when this experiment STARTED.
        std::ifstream in(options.manifestPath);
        std::ostringstream text;
        text << in.rdbuf();
        snapshots.push_back(text.str());
        return Status::ok();
    };
    const SuiteManifest manifest =
        Supervisor(options).run({"a", "b"}, run, noChild);
    EXPECT_TRUE(manifest.allOk());
    ASSERT_EQ(snapshots.size(), 2u);
    EXPECT_EQ(snapshots[0], "") << "no manifest before the first run";
    EXPECT_NE(snapshots[1].find("\"name\": \"a\""), std::string::npos)
        << "manifest flushed after experiment a, before b started";
    const std::string final_manifest = slurp(options.manifestPath);
    EXPECT_NE(final_manifest.find("\"name\": \"b\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Supervisor — isolate mode (real /bin/sh children)
// ---------------------------------------------------------------------

ChildCommand
shellChild(const std::string &script)
{
    return [script](const std::string &) {
        ChildPlan plan;
        plan.argv = {"/bin/sh", "-c", script};
        return plan;
    };
}

Status
mustNotRunInProcess(const std::string &, ExperimentOutcome &)
{
    ADD_FAILURE() << "isolate mode must not run in-process";
    return invalidArgumentError("unreachable");
}

TEST(SupervisorIsolate, SuccessfulChildReportsOk)
{
    SupervisorOptions options;
    options.isolate = true;
    const SuiteManifest m = Supervisor(options).run(
        {"child"}, mustNotRunInProcess, shellChild("exit 0"));
    ASSERT_EQ(m.outcomes.size(), 1u);
    EXPECT_EQ(m.outcomes[0].state, RunState::Ok);
    EXPECT_EQ(m.outcomes[0].exitCode, 0);
}

TEST(SupervisorIsolate, FailingChildReportsExitCode)
{
    SupervisorOptions options;
    options.isolate = true;
    const SuiteManifest m = Supervisor(options).run(
        {"child"}, mustNotRunInProcess, shellChild("exit 3"));
    EXPECT_EQ(m.outcomes[0].state, RunState::Failed);
    EXPECT_EQ(m.outcomes[0].exitCode, 3);
    EXPECT_EQ(m.exitCode(), 1);
}

TEST(SupervisorIsolate, CrashingChildIsContainedAndReported)
{
    SupervisorOptions options;
    options.isolate = true;
    options.keepGoing = true;
    const SuiteManifest m = Supervisor(options).run(
        {"crasher"}, mustNotRunInProcess,
        shellChild("kill -ABRT $$"));
    EXPECT_EQ(m.outcomes[0].state, RunState::Crashed);
    EXPECT_EQ(m.outcomes[0].exitCode, 128 + SIGABRT);
    EXPECT_NE(m.outcomes[0].message.find("signal"), std::string::npos);
}

TEST(SupervisorIsolate, HungChildIsKilledAtTheDeadline)
{
    SupervisorOptions options;
    options.isolate = true;
    options.timeoutSeconds = 0.3;
    const SuiteManifest m = Supervisor(options).run(
        {"hung"}, mustNotRunInProcess, shellChild("sleep 30"));
    EXPECT_EQ(m.outcomes[0].state, RunState::Timeout);
    EXPECT_EQ(m.outcomes[0].exitCode, 128 + SIGKILL);
    EXPECT_LT(m.outcomes[0].wallSeconds, 10.0);
    EXPECT_EQ(m.exitCode(), 1);
}

TEST(SupervisorIsolate, CrashedChildIsRetriedPerPolicy)
{
    const std::string dir = testDir("retry_marker");
    ASSERT_TRUE(createDirectories(dir).isOk());
    SupervisorOptions options;
    options.isolate = true;
    options.retry = fastRetry(3);
    // Crash until the marker file exists, then succeed: models a
    // transient crash that a retry (with journaled progress) survives.
    const std::string script = "if [ -e " + dir + "/marker ]; then exit 0; "
                               "else touch " + dir + "/marker; "
                               "kill -ABRT $$; fi";
    const SuiteManifest m = Supervisor(options).run(
        {"flaky_crasher"}, mustNotRunInProcess, shellChild(script));
    EXPECT_EQ(m.outcomes[0].state, RunState::Retried);
    EXPECT_EQ(m.outcomes[0].attempts, 2);
    EXPECT_EQ(m.exitCode(), 0);
}

TEST(SupervisorIsolate, UsageErrorExitCode2IsNotRetried)
{
    const std::string dir = testDir("usage_marker");
    ASSERT_TRUE(createDirectories(dir).isOk());
    SupervisorOptions options;
    options.isolate = true;
    options.retry = fastRetry(5);
    const std::string script =
        "touch " + dir + "/attempt_$$; exit 2";
    const SuiteManifest m = Supervisor(options).run(
        {"usage"}, mustNotRunInProcess, shellChild(script));
    EXPECT_EQ(m.outcomes[0].state, RunState::Failed);
    EXPECT_EQ(m.outcomes[0].exitCode, 2);
    EXPECT_EQ(m.outcomes[0].attempts, 1);
}

} // namespace
} // namespace bigfish::core
