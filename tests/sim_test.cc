/**
 * @file
 * Unit and property tests for the machine simulator: interrupt taxonomy,
 * handler-cost model, activity timelines, the synthesizer's routing
 * semantics (Table 3's isolation knobs), and the closed-form execution
 * engine — including equivalence against a brute-force iteration-by-
 * iteration reference interpreter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "attack/attacker.hh"
#include "sim/activity.hh"
#include "sim/engine.hh"
#include "sim/interrupt.hh"
#include "sim/kernel_sim.hh"
#include "sim/machine.hh"
#include "sim/run_timeline.hh"
#include "sim/synthesizer.hh"
#include "stats/descriptive.hh"
#include "timers/timer.hh"

namespace bigfish::sim {
namespace {

TEST(InterruptKinds, MovabilityMatchesPaper)
{
    // Device IRQs are movable.
    EXPECT_TRUE(isMovable(InterruptKind::NetworkRx));
    EXPECT_TRUE(isMovable(InterruptKind::Graphics));
    EXPECT_TRUE(isMovable(InterruptKind::Disk));
    EXPECT_TRUE(isMovable(InterruptKind::Usb));
    // Ticks, softirqs, IPIs are non-movable (Takeaway 5).
    EXPECT_FALSE(isMovable(InterruptKind::TimerTick));
    EXPECT_FALSE(isMovable(InterruptKind::SoftirqNetRx));
    EXPECT_FALSE(isMovable(InterruptKind::SoftirqTimer));
    EXPECT_FALSE(isMovable(InterruptKind::IrqWork));
    EXPECT_FALSE(isMovable(InterruptKind::ReschedIpi));
    EXPECT_FALSE(isMovable(InterruptKind::TlbShootdown));
}

TEST(InterruptKinds, InterruptVsOtherStalls)
{
    EXPECT_TRUE(isInterrupt(InterruptKind::TimerTick));
    EXPECT_TRUE(isInterrupt(InterruptKind::SpuriousNoise));
    EXPECT_FALSE(isInterrupt(InterruptKind::Preemption));
    EXPECT_FALSE(isInterrupt(InterruptKind::UntraceableStall));
}

TEST(InterruptKinds, TraceabilityExcludesSmiStalls)
{
    EXPECT_TRUE(isTraceable(InterruptKind::TimerTick));
    EXPECT_TRUE(isTraceable(InterruptKind::Preemption));
    EXPECT_FALSE(isTraceable(InterruptKind::UntraceableStall));
}

TEST(InterruptKinds, NamesAreDistinct)
{
    std::set<std::string> names;
    for (int k = 0; k < kNumInterruptKinds; ++k)
        names.insert(interruptKindName(static_cast<InterruptKind>(k)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumInterruptKinds));
}

TEST(HandlerCostModel, GapsExceedContextSwitchFloor)
{
    // Figure 6: all interrupt gaps exceed ~1.5 us due to kernel-entry
    // overhead from Meltdown-era mitigations.
    HandlerCostModel model;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const TimeNs cost =
            model.sample(InterruptKind::ReschedIpi, rng, false);
        EXPECT_GT(cost, model.contextSwitchNs);
    }
}

TEST(HandlerCostModel, VmIsolationAmplifiesCosts)
{
    HandlerCostModel model;
    Rng r1(5), r2(5);
    double native = 0.0, vm = 0.0;
    for (int i = 0; i < 3000; ++i) {
        native += static_cast<double>(
            model.sample(InterruptKind::NetworkRx, r1, false));
        vm += static_cast<double>(
            model.sample(InterruptKind::NetworkRx, r2, true));
    }
    // Host + guest double handling substantially amplifies stolen time.
    EXPECT_GT(vm, native * 1.4);
}

TEST(HandlerCostModel, WorkScaleScalesBody)
{
    HandlerCostModel model;
    Rng r1(6), r2(6);
    double light = 0.0, heavy = 0.0;
    for (int i = 0; i < 3000; ++i) {
        light += static_cast<double>(
            model.sample(InterruptKind::SoftirqNetRx, r1, false, 1.0));
        heavy += static_cast<double>(
            model.sample(InterruptKind::SoftirqNetRx, r2, false, 2.0));
    }
    EXPECT_GT(heavy, light * 1.3);
}

TEST(HandlerCostModel, KindsHaveCharacteristicMedians)
{
    // Figure 6 / Takeaway 6: distinct kinds have distinct distributions.
    HandlerCostModel model;
    EXPECT_NE(model.params(InterruptKind::TimerTick).median,
              model.params(InterruptKind::IrqWork).median);
    EXPECT_GT(model.params(InterruptKind::IrqWork).median,
              model.params(InterruptKind::ReschedIpi).median);
}

TEST(NormalizeTimeline, SortsAndSerializesOverlaps)
{
    std::vector<StolenInterval> stolen = {
        {100, 50, InterruptKind::TimerTick},
        {50, 100, InterruptKind::NetworkRx}, // Overlaps the first.
        {500, 10, InterruptKind::ReschedIpi},
    };
    normalizeTimeline(stolen);
    ASSERT_EQ(stolen.size(), 3u);
    EXPECT_EQ(stolen[0].arrival, 50);
    EXPECT_EQ(stolen[1].arrival, 150); // Queued behind the first handler.
    EXPECT_EQ(stolen[2].arrival, 500);
    for (std::size_t i = 1; i < stolen.size(); ++i)
        EXPECT_GE(stolen[i].arrival, stolen[i - 1].end());
}

/** Field-wise equality; StolenInterval deliberately has no operator==. */
bool
sameIntervals(const std::vector<StolenInterval> &a,
              const std::vector<StolenInterval> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].arrival != b[i].arrival || a[i].duration != b[i].duration ||
            a[i].kind != b[i].kind)
            return false;
    }
    return true;
}

/** A stream where most arrivals collide: every tick lands piggybacked
 *  softirq/IRQ-work entries at exactly the same nanosecond, the
 *  real-world tie source (emitTicks emits both at tick.end()). */
std::vector<StolenInterval>
tieHeavyStream(std::size_t groups, std::size_t per_group,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<StolenInterval> stolen;
    stolen.reserve(groups * per_group);
    const InterruptKind kinds[] = {
        InterruptKind::TimerTick, InterruptKind::SoftirqTimer,
        InterruptKind::IrqWork, InterruptKind::ReschedIpi,
    };
    for (std::size_t g = 0; g < groups; ++g) {
        // Unsorted group starts so both merge paths see ties.
        const TimeNs at = static_cast<TimeNs>(
            rng.uniform() * 1e6 * static_cast<double>(groups));
        for (std::size_t i = 0; i < per_group; ++i) {
            StolenInterval s;
            s.arrival = at; // Every entry in the group ties.
            s.duration = 100 + static_cast<TimeNs>(rng.uniform() * 900.0);
            s.kind = kinds[i % (sizeof(kinds) / sizeof(kinds[0]))];
            stolen.push_back(s);
        }
    }
    return stolen;
}

TEST(NormalizeTimeline, TieHeavyStreamsNormalizeDeterministically)
{
    // byArrival compares with strict `<` — a valid strict weak ordering
    // that treats tied arrivals as equivalent. What order equivalent
    // elements end up in is the library sort's business in the bucket
    // fallback; this property pins the part we rely on: for a fixed
    // input the result is reproducible call over call, sorted, and
    // loses no events. Exercises both the short-tail merge (small
    // stream) and the bucket sort (large stream).
    for (const std::size_t groups : {8u, 600u}) {
        const auto original = tieHeavyStream(groups, 6, 2022);
        auto first = original;
        normalizeTimeline(first);
        auto second = original;
        normalizeTimeline(second);
        EXPECT_TRUE(sameIntervals(first, second)) << groups << " groups";
        ASSERT_EQ(first.size(), original.size());
        TimeNs busy = 0;
        for (const StolenInterval &s : first) {
            EXPECT_GE(s.arrival, busy); // Sorted and serialized.
            busy = s.end();
        }
        // Same work, just reordered: durations survive as a multiset.
        std::multiset<TimeNs> want, got;
        for (const StolenInterval &s : original)
            want.insert(s.duration);
        for (const StolenInterval &s : first)
            got.insert(s.duration);
        EXPECT_EQ(want, got);
    }
}

TEST(NormalizeTimeline, TiedTailEntriesStayBehindTiedPrefixEntries)
{
    // The short-tail merge path must be *stable*: entries appended
    // after an already-normalized prefix (browser stalls, injected
    // faults) that tie with a prefix arrival go after the prefix
    // entry, matching the std::inplace_merge contract the arena-backed
    // merge replaced.
    std::vector<StolenInterval> stolen;
    for (int i = 0; i < 40; ++i) {
        StolenInterval s;
        s.arrival = 1000 * (i + 1);
        s.duration = 10;
        s.kind = InterruptKind::TimerTick; // Marks "prefix".
        stolen.push_back(s);
    }
    for (int i = 0; i < 10; ++i) {
        StolenInterval s;
        s.arrival = 1000 * (4 * i + 1); // Ties an existing prefix arrival.
        s.duration = 10;
        s.kind = InterruptKind::NetworkRx; // Marks "appended tail".
        stolen.push_back(s);
    }
    normalizeTimeline(stolen);
    ASSERT_EQ(stolen.size(), 50u);
    // Wherever a tail entry landed, the prefix entry it tied with must
    // be directly before it (serialization preserves vector order).
    for (std::size_t i = 0; i < stolen.size(); ++i) {
        if (stolen[i].kind == InterruptKind::NetworkRx) {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(stolen[i - 1].kind, InterruptKind::TimerTick)
                << "tail entry overtook its tied prefix entry at " << i;
        }
    }
}

TEST(NormalizeTimeline, CounterOverloadIsBitIdenticalToPlainCall)
{
    // The PerfCounters* overload must never change results — counters
    // observe the work, they don't participate in it.
    for (const std::size_t groups : {8u, 600u}) {
        auto plain = tieHeavyStream(groups, 6, 7);
        auto counted = plain;
        normalizeTimeline(plain);
        PerfCounters perf;
        normalizeTimeline(counted, &perf);
        EXPECT_TRUE(sameIntervals(plain, counted)) << groups << " groups";
        EXPECT_GT(perf.bytesSorted, 0);
        EXPECT_GT(perf.allocations, 0);
    }
}

TEST(ActivityTimeline, IndexingAndClamping)
{
    ActivityTimeline timeline(100 * kMsec, 10 * kMsec);
    EXPECT_EQ(timeline.numIntervals(), 10u);
    EXPECT_EQ(timeline.indexAt(0), 0u);
    EXPECT_EQ(timeline.indexAt(95 * kMsec), 9u);
    EXPECT_EQ(timeline.indexAt(500 * kMsec), 9u); // Clamped.
    EXPECT_EQ(timeline.indexAt(-5), 0u);
}

TEST(ActivityTimeline, AddSpanDepositsWeightedContribution)
{
    ActivityTimeline timeline(100 * kMsec, 10 * kMsec);
    ActivitySample s;
    s.netRxRate = 100.0;
    // Span covers half of interval 0 and all of interval 1.
    timeline.addSpan(5 * kMsec, 15 * kMsec, s);
    EXPECT_NEAR(timeline.at(0).netRxRate, 50.0, 1e-9);
    EXPECT_NEAR(timeline.at(1).netRxRate, 100.0, 1e-9);
    EXPECT_NEAR(timeline.at(2).netRxRate, 0.0, 1e-9);
}

TEST(ActivityTimeline, AddSpanClipsToDuration)
{
    ActivityTimeline timeline(50 * kMsec, 10 * kMsec);
    ActivitySample s;
    s.cpuLoad = 1.0;
    timeline.addSpan(40 * kMsec, 100 * kMsec, s); // Extends past the end.
    EXPECT_NEAR(timeline.at(4).cpuLoad, 1.0, 1e-9);
}

TEST(ActivityTimeline, SuperimposeAddsElementwise)
{
    ActivityTimeline a(40 * kMsec, 10 * kMsec);
    ActivityTimeline b(40 * kMsec, 10 * kMsec);
    ActivitySample s;
    s.reschedRate = 5.0;
    a.addSpan(0, 40 * kMsec, s);
    b.addSpan(0, 40 * kMsec, s);
    a.superimpose(b);
    EXPECT_NEAR(a.at(2).reschedRate, 10.0, 1e-9);
}

TEST(ActivityTimeline, ClampPhysicalBoundsOccupancy)
{
    ActivityTimeline timeline(20 * kMsec, 10 * kMsec);
    ActivitySample s;
    s.cacheOccupancy = 3.0;
    s.netRxRate = -5.0;
    timeline.addSpan(0, 20 * kMsec, s);
    timeline.clampPhysical();
    EXPECT_LE(timeline.at(0).cacheOccupancy, 1.0);
    EXPECT_GE(timeline.at(0).netRxRate, 0.0);
}

TEST(OsProfiles, PresetsDiffer)
{
    const auto linux_os = OsProfile::linux();
    const auto windows_os = OsProfile::windows();
    const auto macos_os = OsProfile::macos();
    EXPECT_LT(linux_os.backgroundIrqRate, windows_os.backgroundIrqRate);
    EXPECT_NE(linux_os.tickHz, windows_os.tickHz);
    EXPECT_NE(macos_os.name, linux_os.name);
}

TEST(MachineConfig, LlcGeometry)
{
    const auto config = MachineConfig::linuxDesktop();
    EXPECT_EQ(config.llcLines(), 8LL * 1024 * 1024 / 64);
    EXPECT_EQ(config.tickPeriod(), kSec / config.os.tickHz);
}

/** A quiet 1-second activity timeline. */
ActivityTimeline
idleActivity(TimeNs duration = kSec)
{
    return ActivityTimeline(duration);
}

/** A 1-second timeline with a busy network phase in the middle. */
ActivityTimeline
busyActivity(TimeNs duration = kSec)
{
    ActivityTimeline activity(duration);
    ActivitySample s;
    s.netRxRate = 800.0;
    s.softirqWork = 1.0;
    s.reschedRate = 100.0;
    s.tlbRate = 50.0;
    s.cpuLoad = 2.0;
    s.cacheOccupancy = 0.5;
    activity.addSpan(duration / 4, duration / 2, s);
    return activity;
}

TEST(Synthesizer, ProducesSortedNonOverlappingTimeline)
{
    InterruptSynthesizer synth(MachineConfig::linuxDesktop());
    Rng rng(17);
    const RunTimeline timeline = synth.synthesize(busyActivity(), rng);
    ASSERT_FALSE(timeline.stolen.empty());
    for (std::size_t i = 1; i < timeline.stolen.size(); ++i)
        EXPECT_GE(timeline.stolen[i].arrival, timeline.stolen[i - 1].end());
    EXPECT_LE(timeline.stolen.back().end(), timeline.duration);
    EXPECT_GE(timeline.stolen.front().arrival, 0);
}

TEST(Synthesizer, TimerTicksAlwaysPresent)
{
    InterruptSynthesizer synth(MachineConfig::linuxDesktop());
    Rng rng(18);
    const RunTimeline timeline = synth.synthesize(idleActivity(), rng);
    std::size_t ticks = 0;
    for (const auto &s : timeline.stolen)
        if (s.kind == InterruptKind::TimerTick)
            ++ticks;
    // 250 Hz for 1 second, minus edge effects.
    EXPECT_NEAR(static_cast<double>(ticks), 250.0, 15.0);
}

TEST(Synthesizer, BusyVictimStealsMoreTime)
{
    InterruptSynthesizer synth(MachineConfig::linuxDesktop());
    Rng r1(19), r2(19);
    const auto idle = synth.synthesize(idleActivity(), r1);
    const auto busy = synth.synthesize(busyActivity(), r2);
    EXPECT_GT(busy.totalStolenAll(), idle.totalStolenAll());
}

TEST(Synthesizer, IrqPinningRemovesMovableOnly)
{
    MachineConfig pinned = MachineConfig::linuxDesktop();
    pinned.routing = IrqRoutingPolicy::PinnedAway;
    InterruptSynthesizer synth(pinned);
    Rng rng(20);
    const auto timeline = synth.synthesize(busyActivity(), rng);
    std::size_t movable = 0, non_movable = 0;
    for (const auto &s : timeline.stolen) {
        if (isMovable(s.kind))
            ++movable;
        else if (isInterrupt(s.kind))
            ++non_movable;
    }
    EXPECT_EQ(movable, 0u);
    // Softirqs, IPIs and ticks still leak (the paper's key finding).
    EXPECT_GT(non_movable, 100u);
}

TEST(Synthesizer, SoftirqLeakageSurvivesIrqPinning)
{
    MachineConfig pinned = MachineConfig::linuxDesktop();
    pinned.routing = IrqRoutingPolicy::PinnedAway;
    InterruptSynthesizer synth(pinned);
    Rng r1(21), r2(22);
    const auto idle = synth.synthesize(idleActivity(), r1);
    const auto busy = synth.synthesize(busyActivity(), r2);
    auto softirq_time = [](const RunTimeline &t) {
        return t.totalStolen([](const StolenInterval &s) {
            return s.kind == InterruptKind::SoftirqNetRx ||
                   s.kind == InterruptKind::SoftirqTimer;
        });
    };
    // Victim network work raises softirq time on the attacker core even
    // though every device IRQ is pinned away.
    EXPECT_GT(softirq_time(busy), softirq_time(idle) * 2);
}

TEST(Synthesizer, PinnedCoresRemovePreemptions)
{
    MachineConfig config = MachineConfig::linuxDesktop();
    config.pinnedCores = true;
    InterruptSynthesizer synth(config);
    Rng rng(23);
    const auto timeline = synth.synthesize(busyActivity(), rng);
    for (const auto &s : timeline.stolen)
        EXPECT_NE(s.kind, InterruptKind::Preemption);
}

TEST(Synthesizer, UnpinnedBusyVictimCausesPreemptions)
{
    MachineConfig config = MachineConfig::linuxDesktop();
    config.pinnedCores = false;
    InterruptSynthesizer synth(config);
    std::size_t preemptions = 0;
    for (int run = 0; run < 10; ++run) {
        Rng rng(100 + run);
        const auto timeline = synth.synthesize(busyActivity(), rng);
        for (const auto &s : timeline.stolen)
            if (s.kind == InterruptKind::Preemption)
                ++preemptions;
    }
    EXPECT_GT(preemptions, 0u);
}

TEST(Synthesizer, FrequencyScalingTracksLoad)
{
    MachineConfig config = MachineConfig::linuxDesktop();
    config.frequencyScaling = true;
    InterruptSynthesizer synth(config);
    Rng rng(24);
    const auto timeline = synth.synthesize(busyActivity(), rng);
    // The busy middle section runs the attacker slower than the idle
    // edges (higher iteration-cost factor).
    const double edge = timeline.iterCostFactor.front();
    const double middle =
        timeline.iterCostFactor[timeline.iterCostFactor.size() / 2];
    EXPECT_GT(middle, edge);
}

TEST(Synthesizer, DisabledFrequencyScalingIsFlat)
{
    MachineConfig config = MachineConfig::linuxDesktop();
    config.frequencyScaling = false;
    InterruptSynthesizer synth(config);
    Rng rng(25);
    const auto timeline = synth.synthesize(busyActivity(), rng);
    for (double f : timeline.iterCostFactor)
        EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Synthesizer, VmIsolationIncreasesStolenTime)
{
    MachineConfig native = MachineConfig::linuxDesktop();
    MachineConfig vm = native;
    vm.vmIsolation = true;
    Rng r1(26), r2(26);
    const auto t_native =
        InterruptSynthesizer(native).synthesize(busyActivity(), r1);
    const auto t_vm = InterruptSynthesizer(vm).synthesize(busyActivity(), r2);
    EXPECT_GT(t_vm.totalStolenAll(),
              static_cast<TimeNs>(
        static_cast<double>(t_native.totalStolenAll()) * 1.5));
}

TEST(Synthesizer, OccupancyMirrorsActivity)
{
    InterruptSynthesizer synth(MachineConfig::linuxDesktop());
    Rng rng(29);
    const auto timeline = synth.synthesize(busyActivity(), rng);
    const std::size_t mid = timeline.occupancy.size() / 2;
    EXPECT_GT(timeline.occupancy[mid], 0.3);
    EXPECT_LT(timeline.occupancy.front(), 0.1);
}

TEST(KernelSim, ProducesWellFormedTimeline)
{
    KernelSim kernel(MachineConfig::linuxDesktop());
    Rng rng(31);
    const RunTimeline timeline = kernel.run(busyActivity(), rng);
    ASSERT_FALSE(timeline.stolen.empty());
    for (std::size_t i = 1; i < timeline.stolen.size(); ++i)
        EXPECT_GE(timeline.stolen[i].arrival,
                  timeline.stolen[i - 1].end());
    EXPECT_LE(timeline.stolen.back().end(), timeline.duration);
}

TEST(KernelSim, IrqPinningRemovesMovableFromAttackerCore)
{
    MachineConfig pinned = MachineConfig::linuxDesktop();
    pinned.routing = IrqRoutingPolicy::PinnedAway;
    // Core 0 receives all pinned IRQs, so the attacker must not be 0
    // (default attacker core is 1).
    KernelSim kernel(pinned);
    Rng rng(32);
    const RunTimeline timeline = kernel.run(busyActivity(), rng);
    std::size_t movable = 0, softirq = 0;
    for (const auto &s : timeline.stolen) {
        if (isMovable(s.kind))
            ++movable;
        if (s.kind == InterruptKind::SoftirqNetRx)
            ++softirq;
    }
    EXPECT_EQ(movable, 0u);
    // The ksoftirqd migration path still delivers deferred work.
    EXPECT_GT(softirq, 0u);
}

TEST(KernelSim, SpreadRoutingDeliversRoughlyOneNthOfIrqs)
{
    // Mechanistic check of the synthesizer's 1/numCores thinning: with
    // round-robin routing over 4 cores the attacker should see about a
    // quarter of the system-wide device IRQs.
    MachineConfig config = MachineConfig::linuxDesktop();
    KernelSim kernel(config);
    ActivityTimeline activity(2 * kSec);
    ActivitySample s;
    s.gfxRate = 1000.0; // Pure movable stream, no softirq coupling.
    activity.addSpan(0, 2 * kSec, s);
    Rng rng(33);
    const RunTimeline timeline = kernel.run(activity, rng);
    std::size_t gfx = 0;
    for (const auto &e : timeline.stolen)
        if (e.kind == InterruptKind::Graphics)
            ++gfx;
    // 2000 expected system-wide; ~500 on the attacker's core.
    EXPECT_NEAR(static_cast<double>(gfx), 500.0, 90.0);
}

TEST(KernelSim, CrossValidatesAgainstSynthesizer)
{
    // The event-driven kernel and the statistical synthesizer must
    // agree on the aggregate: total interrupt time stolen from the
    // attacker's core for the same workload, within a loose band.
    const MachineConfig config = MachineConfig::linuxDesktop();
    KernelSim kernel(config);
    InterruptSynthesizer synth(config);

    double kernel_total = 0.0, synth_total = 0.0;
    const int runs = 8;
    for (int run = 0; run < runs; ++run) {
        Rng r1(500 + run), r2(800 + run);
        const auto a = busyActivity(2 * kSec);
        const auto t_kernel = kernel.run(a, r1);
        const auto t_synth = synth.synthesize(a, r2);
        auto interrupt_time = [](const RunTimeline &t) {
            return static_cast<double>(t.totalStolen(
                [](const StolenInterval &s) {
                    return isInterrupt(s.kind);
                }));
        };
        kernel_total += interrupt_time(t_kernel);
        synth_total += interrupt_time(t_synth);
    }
    // Same order of magnitude, within 2x either way.
    EXPECT_GT(kernel_total, synth_total * 0.5);
    EXPECT_LT(kernel_total, synth_total * 2.0);
}

TEST(KernelSim, AttackerTracesFromBothModelsLookAlike)
{
    // End-to-end: run the loop attacker over both models' timelines for
    // the same site and compare counter statistics.
    const MachineConfig config = MachineConfig::linuxDesktop();
    KernelSim kernel(config);
    InterruptSynthesizer synth(config);
    Rng w1(41), w2(41), r1(42), r2(43);
    const auto site_activity_a = busyActivity(3 * kSec);
    const auto site_activity_b = busyActivity(3 * kSec);

    bigfish::attack::AttackerParams params;
    timers::PreciseTimer timer_a, timer_b;
    const auto trace_kernel = bigfish::attack::collectTraceOrDie(
        bigfish::attack::AttackerKind::LoopCounting, params, config,
        kernel.run(site_activity_a, r1), timer_a, 5 * kMsec);
    const auto trace_synth = bigfish::attack::collectTraceOrDie(
        bigfish::attack::AttackerKind::LoopCounting, params, config,
        synth.synthesize(site_activity_b, r2), timer_b, 5 * kMsec);

    EXPECT_NEAR(trace_kernel.maxCount(), trace_synth.maxCount(),
                trace_synth.maxCount() * 0.05);
    const double mean_kernel = bigfish::stats::mean(trace_kernel.counts);
    const double mean_synth = bigfish::stats::mean(trace_synth.counts);
    EXPECT_NEAR(mean_kernel, mean_synth, mean_synth * 0.05);
}

TEST(RunTimeline, StepLookupAndEnds)
{
    RunTimeline timeline;
    timeline.duration = 100 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(10, 1.0);
    timeline.iterCostFactor[3] = 2.0;
    timeline.occupancy = std::vector<double>(10, 0.0);
    EXPECT_EQ(timeline.stepAt(35 * kMsec), 3u);
    EXPECT_DOUBLE_EQ(timeline.iterCostFactorAt(35 * kMsec), 2.0);
    EXPECT_EQ(timeline.stepEnd(35 * kMsec), 40 * kMsec);
    EXPECT_EQ(timeline.stepEnd(95 * kMsec), 100 * kMsec);
}

/**
 * Brute-force reference: simulates the attacker loop one iteration at a
 * time (no closed-form shortcuts). Used to validate ExecutionEngine.
 */
std::vector<std::int64_t>
referenceAttacker(const RunTimeline &timeline, timers::TimerModel &timer,
                  TimeNs period, double iter_cost)
{
    std::vector<std::int64_t> counts;
    double t = 0.0;
    std::size_t idx = 0;
    const auto &stolen = timeline.stolen;
    const double duration = static_cast<double>(timeline.duration);
    while (t < duration) {
        // Skip any stolen interval already begun.
        while (idx < stolen.size() &&
               static_cast<double>(stolen[idx].arrival) <= t) {
            t = std::max(t, static_cast<double>(stolen[idx].end()));
            ++idx;
        }
        if (t >= duration)
            break;
        const TimeNs begin_obs =
            timer.observe(static_cast<TimeNs>(std::llround(t)));
        std::int64_t counter = 0;
        while (true) {
            // One iteration, charging mid-iteration interrupts.
            double rem = iter_cost;
            while (idx < stolen.size() &&
                   static_cast<double>(stolen[idx].arrival) <= t + rem) {
                rem -= std::max(
                    0.0, static_cast<double>(stolen[idx].arrival) - t);
                t = static_cast<double>(stolen[idx].end());
                ++idx;
            }
            t += rem;
            ++counter;
            if (timer.observe(static_cast<TimeNs>(std::llround(t))) -
                    begin_obs >=
                period)
                break;
            if (t >= duration)
                break;
        }
        counts.push_back(counter);
    }
    return counts;
}

/** Builds a small timeline with hand-placed interrupts. */
RunTimeline
handTimeline()
{
    RunTimeline timeline;
    timeline.duration = 100 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(10, 1.0);
    timeline.occupancy = std::vector<double>(10, 0.0);
    Rng rng(55);
    std::vector<StolenInterval> stolen;
    for (int i = 0; i < 60; ++i) {
        StolenInterval s;
        s.arrival = static_cast<TimeNs>(rng.uniform(0.0, 99.0) * kMsec);
        s.duration = static_cast<TimeNs>(rng.uniform(2.0, 40.0) * kUsec);
        s.kind = InterruptKind::TimerTick;
        stolen.push_back(s);
    }
    normalizeTimeline(stolen);
    timeline.stolen = std::move(stolen);
    return timeline;
}

class EngineVsReference : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineVsReference, MatchesBruteForceExactly)
{
    const RunTimeline timeline = handTimeline();
    const double iter_cost = 185.0;

    timers::TimerSpec spec;
    switch (GetParam()) {
      case 0:
        spec = timers::TimerSpec::precise();
        break;
      case 1:
        spec = timers::TimerSpec::quantized(100 * kUsec);
        break;
      case 2:
        spec = timers::TimerSpec::jittered(100 * kUsec);
        break;
      case 3:
        spec = timers::TimerSpec::randomizedDefense(
            {kMsec, 2, 6, 2, 6, 20 * kMsec});
        break;
    }

    auto timer_engine = spec.make(1234);
    auto timer_ref = spec.make(1234);

    ExecutionEngine engine(
        timeline,
        std::vector<double>(timeline.iterCostFactor.size(), iter_cost));
    std::vector<std::int64_t> engine_counts;
    PeriodResult result;
    while (engine.runPeriod(*timer_engine, 5 * kMsec, result))
        engine_counts.push_back(result.iterations);

    const auto ref_counts =
        referenceAttacker(timeline, *timer_ref, 5 * kMsec, iter_cost);

    ASSERT_EQ(engine_counts.size(), ref_counts.size());
    for (std::size_t i = 0; i < ref_counts.size(); ++i)
        EXPECT_EQ(engine_counts[i], ref_counts[i]) << "period " << i;
}

INSTANTIATE_TEST_SUITE_P(Timers, EngineVsReference,
                         ::testing::Range(0, 4));

TEST(ExecutionEngine, IdleThroughputMatchesClosedForm)
{
    RunTimeline timeline;
    timeline.duration = kSec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(100, 1.0);
    timeline.occupancy = std::vector<double>(100, 0.0);

    timers::PreciseTimer timer;
    ExecutionEngine engine(timeline, std::vector<double>(100, 200.0));
    PeriodResult result;
    ASSERT_TRUE(engine.runPeriod(timer, 5 * kMsec, result));
    // 5 ms / 200 ns = 25,000 iterations, exact on an idle machine.
    EXPECT_EQ(result.iterations, 25000);
    EXPECT_EQ(result.wallTime, 5 * kMsec);
}

TEST(ExecutionEngine, InterruptsReduceCounts)
{
    RunTimeline idle;
    idle.duration = 100 * kMsec;
    idle.activityInterval = 10 * kMsec;
    idle.iterCostFactor = std::vector<double>(10, 1.0);
    idle.occupancy = std::vector<double>(10, 0.0);

    RunTimeline busy = idle;
    // One 1 ms handler per 5 ms period.
    for (TimeNs t = 2 * kMsec; t < busy.duration; t += 5 * kMsec)
        busy.stolen.push_back({t, kMsec, InterruptKind::NetworkRx});

    timers::PreciseTimer timer;
    ExecutionEngine idle_engine(idle, std::vector<double>(10, 200.0));
    ExecutionEngine busy_engine(busy, std::vector<double>(10, 200.0));
    PeriodResult r_idle, r_busy;
    ASSERT_TRUE(idle_engine.runPeriod(timer, 5 * kMsec, r_idle));
    ASSERT_TRUE(busy_engine.runPeriod(timer, 5 * kMsec, r_busy));
    // The busy period loses ~1 ms of 5 ms: ~20% fewer iterations.
    EXPECT_NEAR(static_cast<double>(r_busy.iterations),
                static_cast<double>(r_idle.iterations) * 0.8,
                static_cast<double>(r_idle.iterations) * 0.02);
}

TEST(ExecutionEngine, ConsumesWholeRun)
{
    const RunTimeline timeline = handTimeline();
    timers::PreciseTimer timer;
    ExecutionEngine engine(
        timeline, std::vector<double>(timeline.iterCostFactor.size(), 185.0));
    PeriodResult result;
    TimeNs covered = 0;
    while (engine.runPeriod(timer, 5 * kMsec, result))
        covered += result.wallTime;
    EXPECT_TRUE(engine.atEnd());
    // Wall times plus skipped leading stolen time cover the duration.
    EXPECT_GE(covered, timeline.duration * 95 / 100);
    EXPECT_FALSE(engine.runPeriod(timer, 5 * kMsec, result));
}

TEST(ExecutionEngine, RestartReproducesExactly)
{
    const RunTimeline timeline = handTimeline();
    ExecutionEngine engine(
        timeline, std::vector<double>(timeline.iterCostFactor.size(), 185.0));
    timers::PreciseTimer timer;
    std::vector<std::int64_t> first, second;
    PeriodResult result;
    while (engine.runPeriod(timer, 5 * kMsec, result))
        first.push_back(result.iterations);
    engine.restart();
    while (engine.runPeriod(timer, 5 * kMsec, result))
        second.push_back(result.iterations);
    EXPECT_EQ(first, second);
}

TEST(ExecutionEngine, DoWhileSemanticsAlwaysCountsOne)
{
    // With a huge iteration cost, each period still counts >= 1.
    RunTimeline timeline;
    timeline.duration = 100 * kMsec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(10, 1.0);
    timeline.occupancy = std::vector<double>(10, 0.0);
    timers::PreciseTimer timer;
    // 20 ms per iteration with a 5 ms period.
    ExecutionEngine engine(
        timeline, std::vector<double>(10, 20.0 * kMsec));
    PeriodResult result;
    int periods = 0;
    while (engine.runPeriod(timer, 5 * kMsec, result)) {
        EXPECT_EQ(result.iterations, 1);
        ++periods;
    }
    EXPECT_EQ(periods, 5); // 100 ms / 20 ms per (single-iteration) period.
}

TEST(ExecutionEngine, QuantizedTimerStretchesPeriods)
{
    RunTimeline timeline;
    timeline.duration = kSec;
    timeline.activityInterval = 10 * kMsec;
    timeline.iterCostFactor = std::vector<double>(100, 1.0);
    timeline.occupancy = std::vector<double>(100, 0.0);
    timers::QuantizedTimer timer(100 * kMsec);
    ExecutionEngine engine(timeline, std::vector<double>(100, 200.0));
    PeriodResult result;
    std::size_t periods = 0;
    while (engine.runPeriod(timer, 5 * kMsec, result)) {
        ++periods;
        if (engine.atEnd())
            break;
        // Tor-style 100 ms quantization: the 5 ms period cannot end until
        // the observed clock ticks over a 100 ms boundary.
        EXPECT_GE(result.wallTime, 5 * kMsec);
        EXPECT_LE(result.wallTime, 100 * kMsec + kMsec);
    }
    EXPECT_NEAR(static_cast<double>(periods), 10.0, 2.0);
}

} // namespace
} // namespace bigfish::sim
