/**
 * @file
 * Unit tests for src/defense: the spurious-interrupt countermeasure, the
 * cache-sweep countermeasure, background applications, and the page-load
 * overhead model (Section 6.2 reports +15.7%).
 */

#include <gtest/gtest.h>

#include "defense/noise.hh"
#include "sim/synthesizer.hh"

namespace bigfish::defense {
namespace {

TEST(SpuriousInterrupts, OverlayHasBaselineAndBursts)
{
    Rng rng(1);
    const auto overlay =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, rng);
    double min_rate = 1e18, max_rate = 0.0;
    for (std::size_t i = 0; i < overlay.numIntervals(); ++i) {
        min_rate = std::min(min_rate, overlay.at(i).netRxRate);
        max_rate = std::max(max_rate, overlay.at(i).netRxRate);
    }
    // The baseline ping floor is everywhere...
    EXPECT_GE(min_rate, 100.0);
    // ...and bursts push far above it.
    EXPECT_GT(max_rate, 1000.0);
}

TEST(SpuriousInterrupts, BurstScheduleVariesPerRun)
{
    Rng r1(2), r2(3);
    const auto a =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, r1);
    const auto b =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, r2);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.numIntervals(); ++i)
        diff += std::abs(a.at(i).netRxRate - b.at(i).netRxRate);
    // The per-run schedule is the defense; it must differ.
    EXPECT_GT(diff, 1000.0);
}

TEST(SpuriousInterrupts, GeneratesThousandsOfInterrupts)
{
    // Section 6.2: the extension "generates thousands of interrupts".
    Rng rng(4);
    const auto overlay =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, rng);
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    Rng synth_rng(5);
    const auto timeline = synth.synthesize(overlay, synth_rng);
    std::size_t spurious_driven = 0;
    for (const auto &s : timeline.stolen)
        if (s.kind == sim::InterruptKind::NetworkRx ||
            s.kind == sim::InterruptKind::SoftirqNetRx ||
            s.kind == sim::InterruptKind::ReschedIpi)
            ++spurious_driven;
    EXPECT_GT(spurious_driven, 2000u);
}

TEST(CacheSweep, PinsOccupancyHigh)
{
    const auto overlay = cacheSweepOverlay(10 * kSec, CacheSweepParams{});
    for (std::size_t i = 0; i < overlay.numIntervals(); ++i)
        EXPECT_NEAR(overlay.at(i).cacheOccupancy, 0.9, 1e-9);
}

TEST(CacheSweep, GeneratesFewInterruptsComparedToSpurious)
{
    // Table 2's asymmetry: cache noise barely dents either attack
    // because it produces almost no interrupts.
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    Rng r1(6), r2(7), r3(8);
    const auto cache_timeline = synth.synthesize(
        cacheSweepOverlay(10 * kSec, CacheSweepParams{}), r1);
    const auto spurious_timeline = synth.synthesize(
        spuriousInterruptOverlay(10 * kSec, SpuriousInterruptParams{}, r2),
        r3);
    EXPECT_LT(cache_timeline.totalStolenAll(),
              spurious_timeline.totalStolenAll() / 2);
}

TEST(BackgroundApps, ModerateStationaryActivity)
{
    Rng rng(9);
    const auto overlay = backgroundAppsOverlay(15 * kSec, rng);
    double total_net = 0.0;
    for (std::size_t i = 0; i < overlay.numIntervals(); ++i) {
        total_net += overlay.at(i).netRxRate;
        // Slack + Spotify use some CPU but nowhere near a full core each.
        EXPECT_LT(overlay.at(i).cpuLoad, 1.5);
    }
    EXPECT_GT(total_net / static_cast<double>(overlay.numIntervals()),
              50.0);
}

TEST(Overhead, SpuriousInterruptsCostAround15Percent)
{
    // Paper: average load time rises 3.12 s -> 3.61 s (+15.7%).
    Rng rng(10);
    const auto overlay =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, rng);
    const double factor = loadTimeOverheadFactor(overlay, 4);
    EXPECT_GT(factor, 1.05);
    EXPECT_LT(factor, 1.35);
}

TEST(Overhead, EmptyOverlayIsFree)
{
    const sim::ActivityTimeline empty(10 * kSec);
    EXPECT_NEAR(loadTimeOverheadFactor(empty, 4), 1.0, 1e-9);
}

TEST(Overhead, MoreCoresAbsorbMoreNoise)
{
    Rng rng(11);
    const auto overlay =
        spuriousInterruptOverlay(15 * kSec, SpuriousInterruptParams{}, rng);
    EXPECT_LT(loadTimeOverheadFactor(overlay, 8),
              loadTimeOverheadFactor(overlay, 2));
}

} // namespace
} // namespace bigfish::defense
