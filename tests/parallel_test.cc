/**
 * @file
 * Determinism and drain guarantees of the parallel execution layer: the
 * same bits must come out of the pipeline at any thread count, and a
 * throwing body must never wedge the pool.
 */

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "base/thread_pool.hh"
#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ml/evaluation.hh"
#include "web/catalog.hh"

namespace bigfish {
namespace {

/** Restores the global pool's thread count when a test exits. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int threads) { setGlobalThreads(threads); }
    ~ScopedThreads() { setGlobalThreads(0); }
};

core::CollectionConfig
smallConfig()
{
    core::CollectionConfig config;
    config.seed = 11;
    config.browser.traceDuration = 2 * kSec;
    return config;
}

attack::TraceSet
collectWithThreads(const core::CollectionConfig &config, int threads,
                   core::CollectionStats *stats = nullptr)
{
    ScopedThreads scoped(threads);
    const core::TraceCollector collector(config);
    const web::SiteCatalog catalog(4, 7);
    auto set = collector.collectClosedWorld(catalog, 3, stats);
    EXPECT_TRUE(set.isOk());
    return std::move(set.value());
}

void
expectBitIdentical(const attack::TraceSet &a, const attack::TraceSet &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
        const attack::Trace &ta = a.traces[t];
        const attack::Trace &tb = b.traces[t];
        EXPECT_EQ(ta.siteId, tb.siteId);
        EXPECT_EQ(ta.label, tb.label);
        ASSERT_EQ(ta.counts.size(), tb.counts.size());
        for (std::size_t i = 0; i < ta.counts.size(); ++i)
            EXPECT_DOUBLE_EQ(ta.counts[i], tb.counts[i]);
        ASSERT_EQ(ta.wallTimes.size(), tb.wallTimes.size());
        for (std::size_t i = 0; i < ta.wallTimes.size(); ++i)
            EXPECT_EQ(ta.wallTimes[i], tb.wallTimes[i]);
    }
}

TEST(ParallelCollection, TracesBitIdenticalAcrossThreadCounts)
{
    const auto config = smallConfig();
    const auto serial = collectWithThreads(config, 1);
    const auto parallel = collectWithThreads(config, 8);
    expectBitIdentical(serial, parallel);
}

TEST(ParallelCollection, OpenWorldBitIdenticalAcrossThreadCounts)
{
    const auto config = smallConfig();
    const web::SiteCatalog catalog(4, 7);
    attack::TraceSet serial, parallel;
    {
        ScopedThreads scoped(1);
        const core::TraceCollector collector(config);
        serial = collector.collectOpenWorld(catalog, 10, 4).valueOrDie();
    }
    {
        ScopedThreads scoped(8);
        const core::TraceCollector collector(config);
        parallel = collector.collectOpenWorld(catalog, 10, 4).valueOrDie();
    }
    expectBitIdentical(serial, parallel);
}

TEST(ParallelCollection, FaultAccountingUnchangedAcrossThreadCounts)
{
    // Heavy truncation faults: many cells drop (below kMinViablePeriods),
    // and the dropped/collected accounting must not depend on scheduling.
    auto config = smallConfig();
    config.faults.truncateProb = 0.5;
    config.faults.truncateKeepMin = 0.0;
    config.faults.truncateKeepMax = 0.005;
    config.faults.seed = 8;

    core::CollectionStats serial_stats, parallel_stats;
    const auto serial = collectWithThreads(config, 1, &serial_stats);
    const auto parallel = collectWithThreads(config, 8, &parallel_stats);

    EXPECT_GT(serial_stats.dropped, 0u);
    EXPECT_EQ(serial_stats.attempted, parallel_stats.attempted);
    EXPECT_EQ(serial_stats.collected, parallel_stats.collected);
    EXPECT_EQ(serial_stats.dropped, parallel_stats.dropped);
    expectBitIdentical(serial, parallel);
}

TEST(SharedCollection, MultiAttackerMatchesSeparateSingleRuns)
{
    // The shared-timeline path must be an optimization, not a semantic
    // change: each attacker's set from one collectClosedWorldMulti() is
    // bit-identical to a separate collectClosedWorld() whose config
    // differs only in `attacker`.
    const auto base = smallConfig();
    const web::SiteCatalog catalog(4, 7);
    const attack::AttackerKind kinds[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    const core::TraceCollector shared_collector(base);
    std::vector<core::CollectionStats> shared_stats;
    const auto shared = shared_collector
                            .collectClosedWorldMulti(catalog, 3, kinds,
                                                     &shared_stats)
                            .valueOrDie();
    ASSERT_EQ(shared.size(), 2u);
    ASSERT_EQ(shared_stats.size(), 2u);

    for (std::size_t a = 0; a < 2; ++a) {
        auto config = base;
        config.attacker = kinds[a];
        core::CollectionStats single_stats;
        const core::TraceCollector collector(config);
        const auto single =
            collector.collectClosedWorld(catalog, 3, &single_stats)
                .valueOrDie();
        expectBitIdentical(shared[a], single);
        EXPECT_EQ(shared_stats[a].attempted, single_stats.attempted);
        EXPECT_EQ(shared_stats[a].collected, single_stats.collected);
        EXPECT_EQ(shared_stats[a].dropped, single_stats.dropped);
    }
}

TEST(SharedCollection, SharedPipelineMatchesSingleRunsAcrossThreads)
{
    core::CollectionConfig collection = smallConfig();
    core::PipelineConfig pipeline;
    pipeline.numSites = 3;
    pipeline.tracesPerSite = 6;
    pipeline.featureLen = 32;
    pipeline.eval.folds = 3;
    pipeline.factory = ml::knnFactory();
    const attack::AttackerKind kinds[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    const auto run_shared = [&](int threads) {
        ScopedThreads scoped(threads);
        return core::runFingerprintingSharedOrDie(collection, kinds,
                                                  pipeline);
    };
    const auto serial = run_shared(1);
    const auto parallel = run_shared(8);
    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(parallel.size(), 2u);

    for (std::size_t a = 0; a < 2; ++a) {
        auto single_cfg = collection;
        single_cfg.attacker = kinds[a];
        const auto single =
            core::runFingerprintingOrDie(single_cfg, pipeline);
        EXPECT_EQ(serial[a].closedWorld.top1Mean,
                  single.closedWorld.top1Mean);
        EXPECT_EQ(serial[a].closedWorld.topKMean,
                  single.closedWorld.topKMean);
        EXPECT_EQ(serial[a].closedWorld.top1Mean,
                  parallel[a].closedWorld.top1Mean);
        EXPECT_EQ(serial[a].collectedTraces, parallel[a].collectedTraces);
    }
}

ml::Dataset
tinyDataset()
{
    // Separable two-class data; enough rows for 3 folds.
    ml::Dataset data;
    Rng rng(99);
    for (int i = 0; i < 24; ++i) {
        const Label y = i % 2;
        std::vector<double> x(16);
        for (auto &v : x)
            v = rng.normal(y == 0 ? -1.0 : 1.0, 0.3);
        data.add(std::move(x), y);
    }
    return data;
}

TEST(ParallelCrossValidation, FoldMetricsMatchAcrossThreadCounts)
{
    const auto data = tinyDataset();
    ml::EvalConfig config;
    config.folds = 3;
    config.seed = 5;

    const auto run = [&](int threads) {
        ScopedThreads scoped(threads);
        return ml::crossValidate(ml::mlpFactory(), data, config);
    };
    const auto serial = run(1);
    const auto parallel = run(8);

    ASSERT_EQ(serial.foldTop1.size(), parallel.foldTop1.size());
    for (std::size_t f = 0; f < serial.foldTop1.size(); ++f) {
        EXPECT_EQ(serial.foldTop1[f], parallel.foldTop1[f]);
        EXPECT_EQ(serial.foldTopK[f], parallel.foldTopK[f]);
    }
    EXPECT_EQ(serial.top1Mean, parallel.top1Mean);
    EXPECT_EQ(serial.topKMean, parallel.topKMean);
}

TEST(ParallelPipeline, EndToEndMetricsMatchAcrossThreadCounts)
{
    core::CollectionConfig collection = smallConfig();
    core::PipelineConfig pipeline;
    pipeline.numSites = 3;
    pipeline.tracesPerSite = 6;
    pipeline.featureLen = 32;
    pipeline.eval.folds = 3;
    pipeline.factory = ml::knnFactory();

    const auto run = [&](int threads) {
        ScopedThreads scoped(threads);
        return core::runFingerprintingOrDie(collection, pipeline);
    };
    const auto serial = run(1);
    const auto parallel = run(2);
    const auto wide = run(8);

    EXPECT_EQ(serial.closedWorld.top1Mean, parallel.closedWorld.top1Mean);
    EXPECT_EQ(serial.closedWorld.top1Mean, wide.closedWorld.top1Mean);
    EXPECT_EQ(serial.closedWorld.topKMean, wide.closedWorld.topKMean);
    EXPECT_EQ(serial.droppedTraces, wide.droppedTraces);
    EXPECT_EQ(serial.collectedTraces, wide.collectedTraces);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesSlotOrder)
{
    ThreadPool pool(8);
    const auto out =
        pool.parallelMap(257, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, PropagatesExceptionsAndDrains)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);

    // The pool must still be fully usable after a failed region.
    std::atomic<int> count{0};
    pool.parallelFor(50, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedRegionsRunInline)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A nested region on a worker must not deadlock waiting for the
        // very workers that are running it.
        globalPool().parallelFor(16, [&](std::size_t) { ++count; });
    });
    EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    bool ran = false;
    // A 1-thread pool runs the body inline on the caller; the write
    // cannot race. bigfish-lint: allow(parallel-capture-race)
    pool.parallelFor(1, [&](std::size_t) { ran = true; });
    EXPECT_TRUE(ran);
}

} // namespace
} // namespace bigfish
