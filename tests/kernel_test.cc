/**
 * @file
 * Property tests of the optimized dense kernels against the naive
 * reference implementation: random shapes (including degenerate 0/1
 * dimensions) must agree within float tolerance, and the row-parallel
 * path must produce bits identical to the serial path.
 *
 * The CrossIsa suite enforces the determinism contract of DESIGN.md
 * §10: every kernels:: entry point must produce bitwise-identical
 * output under BF_SIMD=scalar, sse2 and avx2 (swept in-process via
 * simd::setActive), across odd/prime lengths that exercise every tail
 * lane. Unsupported ISAs are skipped, never failed.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/simd.hh"
#include "base/thread_pool.hh"
#include "ml/conv.hh"
#include "ml/kernels.hh"
#include "ml/lstm.hh"
#include "ml/matrix.hh"
#include "ml/network.hh"

namespace bigfish::ml {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
    return m;
}

Matrix
transposed(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            t(c, r) = m(r, c);
    return t;
}

void
expectNear(const Matrix &got, const Matrix &want, float tol = 1e-5f)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
        // 1e-5 relative: blocked/parallel kernels reorder float adds, so
        // exact equality with the naive loop is not expected.
        const float w = want.data()[i];
        EXPECT_NEAR(got.data()[i], w, tol * (1.0f + std::fabs(w)))
            << "element " << i << " of " << got.rows() << "x" << got.cols();
    }
}

/** Shapes covering square, skinny, fat, vector and degenerate cases. */
struct Shape
{
    std::size_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},  {1, 7, 1},   {5, 1, 5},   {3, 4, 5},    {16, 16, 16},
    {2, 64, 3}, {64, 2, 33}, {31, 17, 1}, {1, 1, 40},   {7, 300, 9},
    {0, 4, 4},  {4, 0, 4},   {4, 4, 0},   {128, 48, 56}};

TEST(Kernel, MatmulMatchesReference)
{
    Rng rng(1);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmul(a, b), matmulReference(a, b));
    }
}

TEST(Kernel, MatmulBiasMatchesReference)
{
    Rng rng(2);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        const Matrix bias = randomMatrix(s.m, 1, rng);
        Matrix want = matmulReference(a, b);
        for (std::size_t r = 0; r < want.rows(); ++r)
            for (std::size_t c = 0; c < want.cols(); ++c)
                want(r, c) += bias(r, 0);
        expectNear(matmulBias(a, b, bias), want);
    }
}

TEST(Kernel, MatmulTransAMatchesReference)
{
    Rng rng(3);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.k, s.m, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmulTransA(a, b), matmulReference(transposed(a), b));
    }
}

TEST(Kernel, MatmulTransBMatchesReference)
{
    Rng rng(4);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.n, s.k, rng);
        expectNear(matmulTransB(a, b), matmulReference(a, transposed(b)));
    }
}

TEST(Kernel, AccumulateVariantsMatchReference)
{
    Rng rng(5);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        const Matrix init = randomMatrix(s.m, s.n, rng);

        Matrix got = init;
        accumulateMatmul(got, a, b);
        Matrix want = matmulReference(a, b);
        want += init;
        expectNear(got, want);

        got = init;
        accumulateMatmulTransA(got, transposed(a), b);
        expectNear(got, want);

        got = init;
        accumulateMatmulTransB(got, a, transposed(b));
        expectNear(got, want);
    }
}

TEST(Kernel, GemvMatchesReference)
{
    Rng rng(6);
    for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                   std::size_t{64}, std::size_t{301}}) {
        for (const std::size_t cols : {std::size_t{1}, std::size_t{13},
                                       std::size_t{256}}) {
            const Matrix a = randomMatrix(rows, cols, rng);
            const Matrix x = randomMatrix(cols, 1, rng);
            const Matrix bias = randomMatrix(rows, 1, rng);
            expectNear(gemv(a, x), matmulReference(a, x));

            Matrix want = matmulReference(a, x);
            want += bias;
            expectNear(gemvBias(a, x, bias), want);
        }
    }
}

TEST(Kernel, ThreadedPathBitIdenticalToSerial)
{
    // Large enough to clear the kernels' parallel-dispatch threshold.
    Rng rng(7);
    const Matrix a = randomMatrix(96, 200, rng);
    const Matrix b = randomMatrix(200, 150, rng);

    setGlobalThreads(1);
    const Matrix serial = matmul(a, b);
    setGlobalThreads(8);
    const Matrix parallel = matmul(a, b);
    setGlobalThreads(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial.data()[i], parallel.data()[i]) << "element " << i;
}

TEST(Kernel, ReluInPlaceClampsNegatives)
{
    Rng rng(8);
    Matrix m = randomMatrix(9, 33, rng);
    const Matrix before = m;
    reluInPlace(m);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], std::max(before.data()[i], 0.0f));
}

TEST(KernelDeathTest, ElementwiseOpsRejectShapeMismatch)
{
    Matrix a(3, 4), b(4, 3);
    EXPECT_DEATH(a += b, "shape mismatch");
}

TEST(Kernel, ResizeReusesAndZeroes)
{
    Matrix m(4, 4);
    m.fill(7.0f);
    m.resize(2, 3, /*zeroed=*/true);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
}

/** The CNN-LSTM topology at toy scale, deterministic per seed. */
Sequential
makeToyNet(std::uint64_t seed)
{
    Rng rng(seed);
    Sequential net;
    net.add(std::make_unique<Conv1D>(2, 6, 4, 2, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool1D>(2));
    net.add(std::make_unique<Lstm>(6, 5, rng));
    net.add(std::make_unique<Dropout>(0.4, rng()));
    net.add(std::make_unique<Dense>(5, 3, rng));
    return net;
}

TEST(BatchedNetwork, ForwardMatchesPerSample)
{
    constexpr std::size_t kSamples = 5, kChannels = 2, kSteps = 24;
    Rng rng(99);
    std::vector<Matrix> samples;
    Matrix batch(kChannels, kSamples * kSteps);
    for (std::size_t s = 0; s < kSamples; ++s) {
        samples.push_back(randomMatrix(kChannels, kSteps, rng));
        for (std::size_t r = 0; r < kChannels; ++r)
            for (std::size_t t = 0; t < kSteps; ++t)
                batch(r, s * kSteps + t) = samples[s](r, t);
    }

    Sequential net = makeToyNet(7);
    ASSERT_TRUE(net.supportsBatch());
    const Matrix out = net.forwardBatch(batch, kSamples, false);
    ASSERT_EQ(out.cols(), kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) {
        const Matrix one = net.forward(samples[s], false);
        ASSERT_EQ(one.rows(), out.rows());
        for (std::size_t r = 0; r < out.rows(); ++r)
            EXPECT_NEAR(out(r, s), one(r, 0),
                        1e-4f * (1.0f + std::fabs(one(r, 0))))
                << "sample " << s << " row " << r;
    }
}

TEST(BatchedNetwork, GradientsMatchPerSampleAccumulation)
{
    constexpr std::size_t kSamples = 6, kChannels = 2, kSteps = 24;
    Rng rng(123);
    std::vector<Matrix> samples;
    std::vector<Label> labels;
    Matrix batch(kChannels, kSamples * kSteps);
    for (std::size_t s = 0; s < kSamples; ++s) {
        samples.push_back(randomMatrix(kChannels, kSteps, rng));
        labels.push_back(static_cast<Label>(s % 3));
        for (std::size_t r = 0; r < kChannels; ++r)
            for (std::size_t t = 0; t < kSteps; ++t)
                batch(r, s * kSteps + t) = samples[s](r, t);
    }

    // Same seed -> identical weights and dropout mask stream, so the
    // batched pass must reproduce the per-sample minibatch gradient up
    // to float summation order.
    Sequential serial = makeToyNet(31);
    Sequential batched = makeToyNet(31);

    Matrix grad;
    double serial_loss = 0.0;
    serial.zeroGrads();
    for (std::size_t s = 0; s < kSamples; ++s) {
        const Matrix logits = serial.forward(samples[s], true);
        serial_loss +=
            SoftmaxCrossEntropy::lossAndGradient(logits, labels[s], grad);
        serial.backward(grad);
    }

    batched.zeroGrads();
    const Matrix logits = batched.forwardBatch(batch, kSamples, true);
    const double batch_loss =
        SoftmaxCrossEntropy::lossAndGradientBatch(logits, labels, grad);
    batched.backwardBatch(grad, kSamples);

    EXPECT_NEAR(batch_loss, serial_loss,
                1e-3 * (1.0 + std::fabs(serial_loss)));
    const auto sg = serial.grads();
    const auto bg = batched.grads();
    ASSERT_EQ(sg.size(), bg.size());
    for (std::size_t i = 0; i < sg.size(); ++i)
        expectNear(*bg[i], *sg[i], 1e-3f);
}

// --- Cross-ISA bit-identity (DESIGN.md §10) ----------------------------

/** Restores the dispatch Tag a test swept away from. */
class TagGuard
{
  public:
    TagGuard() : saved_(simd::active()) {}
    ~TagGuard() { simd::setActive(saved_); }

  private:
    simd::Tag saved_;
};

/** The Tags this host can execute (Scalar always qualifies). */
std::vector<simd::Tag>
supportedTags()
{
    std::vector<simd::Tag> tags;
    for (const simd::Tag tag :
         {simd::Tag::Scalar, simd::Tag::Sse2, simd::Tag::Avx2})
        if (simd::supported(tag))
            tags.push_back(tag);
    return tags;
}

/** Lengths chosen to hit every n%8 tail lane plus prime/odd interiors. */
const std::size_t kLaneLengths[] = {1,  2,  3,  5,  7,  8,   9,   13,
                                    16, 17, 23, 31, 64, 101, 255, 257};

std::vector<float>
randomVec(std::size_t n, Rng &rng, double scale = 1.0)
{
    std::vector<float> v(n);
    for (float &x : v)
        x = static_cast<float>(rng.normal(0.0, scale));
    return v;
}

/**
 * Runs @p op under every supported Tag and asserts the output buffers
 * it fills are bitwise identical to the Scalar path's. @p op receives
 * the Tag (already activated) and must return the buffers to compare.
 */
template <typename Op>
void
expectBitIdenticalAcrossTags(const char *what, std::size_t n, Op op)
{
    TagGuard guard;
    simd::setActive(simd::Tag::Scalar);
    const std::vector<std::vector<float>> want = op();
    for (const simd::Tag tag : supportedTags()) {
        if (tag == simd::Tag::Scalar)
            continue;
        simd::setActive(tag);
        const std::vector<std::vector<float>> got = op();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t b = 0; b < got.size(); ++b) {
            ASSERT_EQ(got[b].size(), want[b].size());
            const bool same =
                std::memcmp(got[b].data(), want[b].data(),
                            want[b].size() * sizeof(float)) == 0;
            EXPECT_TRUE(same) << what << " n=" << n << " buffer " << b
                              << " differs between scalar and "
                              << simd::name(tag);
        }
    }
}

TEST(CrossIsa, DotBitIdentical)
{
    Rng rng(101);
    for (const std::size_t n : kLaneLengths) {
        const std::vector<float> a = randomVec(n, rng);
        const std::vector<float> b = randomVec(n, rng);
        expectBitIdenticalAcrossTags("dot", n, [&] {
            return std::vector<std::vector<float>>{
                {kernels::dot(a.data(), b.data(), n)}};
        });
    }
}

TEST(CrossIsa, DotTile4x2BitIdentical)
{
    Rng rng(102);
    for (const std::size_t k : kLaneLengths) {
        // 4 rows of A against 2 rows of B, C row stride 2.
        const std::vector<float> a = randomVec(4 * k, rng);
        const std::vector<float> b = randomVec(2 * k, rng);
        expectBitIdenticalAcrossTags("dotTile4x2", k, [&] {
            std::vector<float> c(4 * 2, 0.0f);
            kernels::dotTile4x2(c.data(), a.data(), b.data(), 0, 0, k, 2);
            return std::vector<std::vector<float>>{c};
        });
    }
}

TEST(CrossIsa, AxpyBitIdentical)
{
    Rng rng(103);
    for (const std::size_t n : kLaneLengths) {
        const std::vector<float> x = randomVec(n, rng);
        const std::vector<float> y0 = randomVec(n, rng);
        const float alpha = static_cast<float>(rng.normal(0.0, 2.0));
        expectBitIdenticalAcrossTags("axpy", n, [&] {
            std::vector<float> y = y0;
            kernels::axpy(y.data(), x.data(), alpha, n);
            return std::vector<std::vector<float>>{y};
        });
    }
}

TEST(CrossIsa, Axpy4BitIdentical)
{
    Rng rng(104);
    for (const std::size_t n : kLaneLengths) {
        const std::vector<float> x0 = randomVec(n, rng);
        const std::vector<float> x1 = randomVec(n, rng);
        const std::vector<float> x2 = randomVec(n, rng);
        const std::vector<float> x3 = randomVec(n, rng);
        const std::vector<float> y0 = randomVec(n, rng);
        const float a0 = static_cast<float>(rng.normal(0.0, 1.0));
        const float a1 = static_cast<float>(rng.normal(0.0, 1.0));
        const float a2 = static_cast<float>(rng.normal(0.0, 1.0));
        const float a3 = static_cast<float>(rng.normal(0.0, 1.0));
        expectBitIdenticalAcrossTags("axpy4", n, [&] {
            std::vector<float> y = y0;
            kernels::axpy4(y.data(), x0.data(), x1.data(), x2.data(),
                           x3.data(), a0, a1, a2, a3, n);
            return std::vector<std::vector<float>>{y};
        });
    }
}

TEST(CrossIsa, ActivationsBitIdentical)
{
    Rng rng(105);
    for (const std::size_t n : kLaneLengths) {
        // Wide input range to cross every polynomial/clamp branch:
        // interior, saturation (|x| > 88 for exp, > 9 for tanh), zero.
        std::vector<float> base = randomVec(n, rng, 8.0);
        if (n >= 4) {
            base[0] = 0.0f;
            base[1] = 95.0f;
            base[2] = -95.0f;
            base[3] = 0.624f; // just under the tanh |x|<0.625 split
        }
        expectBitIdenticalAcrossTags("relu", n, [&] {
            std::vector<float> d = base;
            kernels::relu(d.data(), n);
            return std::vector<std::vector<float>>{d};
        });
        expectBitIdenticalAcrossTags("sigmoid", n, [&] {
            std::vector<float> d = base;
            kernels::sigmoid(d.data(), n);
            return std::vector<std::vector<float>>{d};
        });
        expectBitIdenticalAcrossTags("tanh", n, [&] {
            std::vector<float> d = base;
            kernels::tanh(d.data(), n);
            return std::vector<std::vector<float>>{d};
        });
    }
}

TEST(CrossIsa, VectorActivationsMatchScalarHelpers)
{
    // The strided GRU loop uses sigmoidScalar/tanhScalar one value at a
    // time; they must agree bitwise with the vector paths under every
    // Tag, or mixing the two in one network breaks determinism.
    TagGuard guard;
    Rng rng(106);
    std::vector<float> xs = randomVec(257, rng, 8.0);
    xs.insert(xs.end(), {0.0f, 95.0f, -95.0f, 0.625f, -0.625f});
    for (const simd::Tag tag : supportedTags()) {
        simd::setActive(tag);
        std::vector<float> sig = xs, tah = xs;
        kernels::sigmoid(sig.data(), sig.size());
        kernels::tanh(tah.data(), tah.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            EXPECT_EQ(sig[i], kernels::sigmoidScalar(xs[i]))
                << "sigmoid x=" << xs[i] << " tag=" << simd::name(tag);
            EXPECT_EQ(tah[i], kernels::tanhScalar(xs[i]))
                << "tanh x=" << xs[i] << " tag=" << simd::name(tag);
        }
    }
}

TEST(CrossIsa, LstmGatesForwardBitIdentical)
{
    Rng rng(107);
    for (const std::size_t n : kLaneLengths) {
        const std::vector<float> zi = randomVec(n, rng, 2.0);
        const std::vector<float> zf = randomVec(n, rng, 2.0);
        const std::vector<float> zg = randomVec(n, rng, 2.0);
        const std::vector<float> zo = randomVec(n, rng, 2.0);
        const std::vector<float> c0 = randomVec(n, rng);
        expectBitIdenticalAcrossTags("lstmGatesForward", n, [&] {
            std::vector<float> i = zi, f = zf, g = zg, o = zo;
            std::vector<float> c = c0, h(n, 0.0f);
            kernels::lstmGatesForward(i.data(), f.data(), g.data(),
                                      o.data(), c.data(), h.data(), n);
            return std::vector<std::vector<float>>{i, f, g, o, c, h};
        });
    }
}

TEST(CrossIsa, LstmGatesBackwardBitIdentical)
{
    Rng rng(108);
    for (const std::size_t n : kLaneLengths) {
        // Post-activation gates in their codomains; c/cprev arbitrary.
        std::vector<float> gi(n), gf(n), gg(n), go(n);
        for (std::size_t j = 0; j < n; ++j) {
            gi[j] = kernels::sigmoidScalar(
                static_cast<float>(rng.normal(0.0, 2.0)));
            gf[j] = kernels::sigmoidScalar(
                static_cast<float>(rng.normal(0.0, 2.0)));
            gg[j] = kernels::tanhScalar(
                static_cast<float>(rng.normal(0.0, 2.0)));
            go[j] = kernels::sigmoidScalar(
                static_cast<float>(rng.normal(0.0, 2.0)));
        }
        const std::vector<float> c = randomVec(n, rng);
        const std::vector<float> cprev = randomVec(n, rng);
        const std::vector<float> dh = randomVec(n, rng);
        const std::vector<float> dc0 = randomVec(n, rng);
        for (const bool first_step : {false, true}) {
            expectBitIdenticalAcrossTags("lstmGatesBackward", n, [&] {
                std::vector<float> dc = dc0;
                std::vector<float> dzi(n), dzf(n), dzg(n), dzo(n);
                kernels::lstmGatesBackward(
                    gi.data(), gf.data(), gg.data(), go.data(), c.data(),
                    first_step ? nullptr : cprev.data(), dh.data(),
                    dc.data(), dzi.data(), dzf.data(), dzg.data(),
                    dzo.data(), n);
                return std::vector<std::vector<float>>{dc, dzi, dzf, dzg,
                                                       dzo};
            });
        }
    }
}

TEST(CrossIsa, AdamStepBitIdentical)
{
    Rng rng(109);
    kernels::AdamConsts consts;
    consts.beta1 = 0.9f;
    consts.beta2 = 0.999f;
    consts.oneMinusBeta1 = 0.1f;
    consts.oneMinusBeta2 = 0.001f;
    consts.invBiasCorrection1 = 1.0f / (1.0f - 0.9f * 0.9f);
    consts.invBiasCorrection2 = 1.0f / (1.0f - 0.999f * 0.999f);
    consts.learningRate = 1e-3f;
    consts.epsilon = 1e-8f;
    consts.gradScale = 1.0f / 32.0f;
    for (const std::size_t n : kLaneLengths) {
        const std::vector<float> p0 = randomVec(n, rng);
        const std::vector<float> g = randomVec(n, rng);
        const std::vector<float> m0 = randomVec(n, rng, 0.1);
        std::vector<float> v0 = randomVec(n, rng, 0.1);
        for (float &x : v0)
            x = std::fabs(x); // second moment is non-negative
        expectBitIdenticalAcrossTags("adamStep", n, [&] {
            std::vector<float> p = p0, m = m0, v = v0;
            kernels::adamStep(p.data(), g.data(), m.data(), v.data(), n,
                              consts);
            return std::vector<std::vector<float>>{p, m, v};
        });
    }
}

TEST(CrossIsa, MatmulBitIdenticalAcrossTags)
{
    // End-to-end through the Matrix layer: the blocked GEMM must give
    // the same bits whichever ISA the kernels dispatch to.
    TagGuard guard;
    Rng rng(110);
    const Matrix a = randomMatrix(37, 113, rng); // prime-ish interior
    const Matrix b = randomMatrix(113, 29, rng);
    simd::setActive(simd::Tag::Scalar);
    const Matrix want = matmul(a, b);
    for (const simd::Tag tag : supportedTags()) {
        simd::setActive(tag);
        const Matrix got = matmul(a, b);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got.data()[i], want.data()[i])
                << "element " << i << " tag=" << simd::name(tag);
    }
}

} // namespace
} // namespace bigfish::ml
