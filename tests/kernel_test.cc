/**
 * @file
 * Property tests of the optimized dense kernels against the naive
 * reference implementation: random shapes (including degenerate 0/1
 * dimensions) must agree within float tolerance, and the row-parallel
 * path must produce bits identical to the serial path.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "ml/conv.hh"
#include "ml/lstm.hh"
#include "ml/matrix.hh"
#include "ml/network.hh"

namespace bigfish::ml {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
    return m;
}

Matrix
transposed(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            t(c, r) = m(r, c);
    return t;
}

void
expectNear(const Matrix &got, const Matrix &want, float tol = 1e-5f)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
        // 1e-5 relative: blocked/parallel kernels reorder float adds, so
        // exact equality with the naive loop is not expected.
        const float w = want.data()[i];
        EXPECT_NEAR(got.data()[i], w, tol * (1.0f + std::fabs(w)))
            << "element " << i << " of " << got.rows() << "x" << got.cols();
    }
}

/** Shapes covering square, skinny, fat, vector and degenerate cases. */
struct Shape
{
    std::size_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},  {1, 7, 1},   {5, 1, 5},   {3, 4, 5},    {16, 16, 16},
    {2, 64, 3}, {64, 2, 33}, {31, 17, 1}, {1, 1, 40},   {7, 300, 9},
    {0, 4, 4},  {4, 0, 4},   {4, 4, 0},   {128, 48, 56}};

TEST(Kernel, MatmulMatchesReference)
{
    Rng rng(1);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmul(a, b), matmulReference(a, b));
    }
}

TEST(Kernel, MatmulBiasMatchesReference)
{
    Rng rng(2);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        const Matrix bias = randomMatrix(s.m, 1, rng);
        Matrix want = matmulReference(a, b);
        for (std::size_t r = 0; r < want.rows(); ++r)
            for (std::size_t c = 0; c < want.cols(); ++c)
                want(r, c) += bias(r, 0);
        expectNear(matmulBias(a, b, bias), want);
    }
}

TEST(Kernel, MatmulTransAMatchesReference)
{
    Rng rng(3);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.k, s.m, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmulTransA(a, b), matmulReference(transposed(a), b));
    }
}

TEST(Kernel, MatmulTransBMatchesReference)
{
    Rng rng(4);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.n, s.k, rng);
        expectNear(matmulTransB(a, b), matmulReference(a, transposed(b)));
    }
}

TEST(Kernel, AccumulateVariantsMatchReference)
{
    Rng rng(5);
    for (const Shape &s : kShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        const Matrix init = randomMatrix(s.m, s.n, rng);

        Matrix got = init;
        accumulateMatmul(got, a, b);
        Matrix want = matmulReference(a, b);
        want += init;
        expectNear(got, want);

        got = init;
        accumulateMatmulTransA(got, transposed(a), b);
        expectNear(got, want);

        got = init;
        accumulateMatmulTransB(got, a, transposed(b));
        expectNear(got, want);
    }
}

TEST(Kernel, GemvMatchesReference)
{
    Rng rng(6);
    for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                   std::size_t{64}, std::size_t{301}}) {
        for (const std::size_t cols : {std::size_t{1}, std::size_t{13},
                                       std::size_t{256}}) {
            const Matrix a = randomMatrix(rows, cols, rng);
            const Matrix x = randomMatrix(cols, 1, rng);
            const Matrix bias = randomMatrix(rows, 1, rng);
            expectNear(gemv(a, x), matmulReference(a, x));

            Matrix want = matmulReference(a, x);
            want += bias;
            expectNear(gemvBias(a, x, bias), want);
        }
    }
}

TEST(Kernel, ThreadedPathBitIdenticalToSerial)
{
    // Large enough to clear the kernels' parallel-dispatch threshold.
    Rng rng(7);
    const Matrix a = randomMatrix(96, 200, rng);
    const Matrix b = randomMatrix(200, 150, rng);

    setGlobalThreads(1);
    const Matrix serial = matmul(a, b);
    setGlobalThreads(8);
    const Matrix parallel = matmul(a, b);
    setGlobalThreads(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial.data()[i], parallel.data()[i]) << "element " << i;
}

TEST(Kernel, ReluInPlaceClampsNegatives)
{
    Rng rng(8);
    Matrix m = randomMatrix(9, 33, rng);
    const Matrix before = m;
    reluInPlace(m);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], std::max(before.data()[i], 0.0f));
}

TEST(KernelDeathTest, ElementwiseOpsRejectShapeMismatch)
{
    Matrix a(3, 4), b(4, 3);
    EXPECT_DEATH(a += b, "shape mismatch");
}

TEST(Kernel, ResizeReusesAndZeroes)
{
    Matrix m(4, 4);
    m.fill(7.0f);
    m.resize(2, 3, /*zeroed=*/true);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
}

/** The CNN-LSTM topology at toy scale, deterministic per seed. */
Sequential
makeToyNet(std::uint64_t seed)
{
    Rng rng(seed);
    Sequential net;
    net.add(std::make_unique<Conv1D>(2, 6, 4, 2, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool1D>(2));
    net.add(std::make_unique<Lstm>(6, 5, rng));
    net.add(std::make_unique<Dropout>(0.4, rng()));
    net.add(std::make_unique<Dense>(5, 3, rng));
    return net;
}

TEST(BatchedNetwork, ForwardMatchesPerSample)
{
    constexpr std::size_t kSamples = 5, kChannels = 2, kSteps = 24;
    Rng rng(99);
    std::vector<Matrix> samples;
    Matrix batch(kChannels, kSamples * kSteps);
    for (std::size_t s = 0; s < kSamples; ++s) {
        samples.push_back(randomMatrix(kChannels, kSteps, rng));
        for (std::size_t r = 0; r < kChannels; ++r)
            for (std::size_t t = 0; t < kSteps; ++t)
                batch(r, s * kSteps + t) = samples[s](r, t);
    }

    Sequential net = makeToyNet(7);
    ASSERT_TRUE(net.supportsBatch());
    const Matrix out = net.forwardBatch(batch, kSamples, false);
    ASSERT_EQ(out.cols(), kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) {
        const Matrix one = net.forward(samples[s], false);
        ASSERT_EQ(one.rows(), out.rows());
        for (std::size_t r = 0; r < out.rows(); ++r)
            EXPECT_NEAR(out(r, s), one(r, 0),
                        1e-4f * (1.0f + std::fabs(one(r, 0))))
                << "sample " << s << " row " << r;
    }
}

TEST(BatchedNetwork, GradientsMatchPerSampleAccumulation)
{
    constexpr std::size_t kSamples = 6, kChannels = 2, kSteps = 24;
    Rng rng(123);
    std::vector<Matrix> samples;
    std::vector<Label> labels;
    Matrix batch(kChannels, kSamples * kSteps);
    for (std::size_t s = 0; s < kSamples; ++s) {
        samples.push_back(randomMatrix(kChannels, kSteps, rng));
        labels.push_back(static_cast<Label>(s % 3));
        for (std::size_t r = 0; r < kChannels; ++r)
            for (std::size_t t = 0; t < kSteps; ++t)
                batch(r, s * kSteps + t) = samples[s](r, t);
    }

    // Same seed -> identical weights and dropout mask stream, so the
    // batched pass must reproduce the per-sample minibatch gradient up
    // to float summation order.
    Sequential serial = makeToyNet(31);
    Sequential batched = makeToyNet(31);

    Matrix grad;
    double serial_loss = 0.0;
    serial.zeroGrads();
    for (std::size_t s = 0; s < kSamples; ++s) {
        const Matrix logits = serial.forward(samples[s], true);
        serial_loss +=
            SoftmaxCrossEntropy::lossAndGradient(logits, labels[s], grad);
        serial.backward(grad);
    }

    batched.zeroGrads();
    const Matrix logits = batched.forwardBatch(batch, kSamples, true);
    const double batch_loss =
        SoftmaxCrossEntropy::lossAndGradientBatch(logits, labels, grad);
    batched.backwardBatch(grad, kSamples);

    EXPECT_NEAR(batch_loss, serial_loss,
                1e-3 * (1.0 + std::fabs(serial_loss)));
    const auto sg = serial.grads();
    const auto bg = batched.grads();
    ASSERT_EQ(sg.size(), bg.size());
    for (std::size_t i = 0; i < sg.size(); ++i)
        expectNear(*bg[i], *sg[i], 1e-3f);
}

} // namespace
} // namespace bigfish::ml
